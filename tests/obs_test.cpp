// Tests for the observability layer (src/obs/): histogram bucket math,
// TraceRing wraparound and concurrency (the TSan job runs these with
// multiple writer threads), snapshot JSON round-trips, and registry
// handles surviving a scheduler quarantine/rejoin cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "core/posg_scheduler.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/profile.hpp"
#include "obs/trace_ring.hpp"

namespace posg {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::Snapshot;
using obs::TraceEvent;
using obs::TraceEventType;
using obs::TraceRing;

TEST(Histogram, BucketIndexMatchesLogTwoLayout) {
  // Bucket 0 holds exact zeros, bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);
  EXPECT_EQ(Histogram::bucket_index(1023), 10u);
  EXPECT_EQ(Histogram::bucket_index(1024), 11u);
  for (std::size_t i = 2; i < Histogram::kBuckets - 1; ++i) {
    // Every non-degenerate bucket's bounds agree with bucket_index.
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(i)), i);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_upper(i) - 1), i);
  }
}

TEST(Histogram, OverflowBucketCatchesTopOfRange) {
  Histogram h;
  const std::uint64_t top = std::uint64_t{1} << 63;
  h.record(top);
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(Histogram::bucket_upper(Histogram::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Histogram, RecordAccumulatesCountSumAndBuckets) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 11u);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  EXPECT_EQ(h.bucket(1), 1u);  // the one
  EXPECT_EQ(h.bucket(3), 2u);  // 5 lands in [4, 8)
}

TEST(Histogram, MergePreservesEveryBucket) {
  Histogram a;
  Histogram b;
  a.record(3);
  a.record(100);
  b.record(3);
  b.record(std::uint64_t{1} << 63);  // overflow bucket
  a.merge_from(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 3u + 100u + 3u + (std::uint64_t{1} << 63));
  EXPECT_EQ(a.bucket(2), 2u);  // both 3s
  EXPECT_EQ(a.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(Histogram, SnapshotQuantilesAreBucketUpperBounds) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency");
  for (int i = 0; i < 90; ++i) {
    h.record(3);  // bucket 2, upper bound 4
  }
  for (int i = 0; i < 10; ++i) {
    h.record(1000);  // bucket 10, upper bound 1024
  }
  const auto snap = registry.snapshot().histograms.at("latency");
  EXPECT_EQ(snap.quantile(0.5), 4u);
  EXPECT_EQ(snap.quantile(0.9), 4u);
  EXPECT_EQ(snap.quantile(0.99), 1024u);
  EXPECT_EQ(snap.quantile(1.0), 1024u);
  EXPECT_NEAR(snap.mean(), (90.0 * 3.0 + 10.0 * 1000.0) / 100.0, 1e-9);
}

TEST(Histogram, ConcurrentRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistry, HandlesAreFindOrCreateAndStable) {
  MetricsRegistry registry;
  obs::Counter& c1 = registry.counter("tuples");
  obs::Counter& c2 = registry.counter("tuples");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  c2.add();
  EXPECT_EQ(registry.snapshot().counters.at("tuples"), 4u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x"), std::invalid_argument);
  EXPECT_THROW(registry.gauge_fn("x", [] { return 0.0; }), std::invalid_argument);
}

TEST(MetricsRegistry, PullCallbacksEvaluateAtSnapshotTime) {
  MetricsRegistry registry;
  std::uint64_t source = 7;
  registry.counter_fn("pull", [&source] { return source; });
  EXPECT_EQ(registry.snapshot().counters.at("pull"), 7u);
  source = 9;
  EXPECT_EQ(registry.snapshot().counters.at("pull"), 9u);
}

TEST(Snapshot, JsonRoundTripsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("c.one").add(42);
  registry.gauge("g.pi").set(3.25);
  Histogram& h = registry.histogram("h.lat");
  h.record(0);
  h.record(7);
  h.record(std::uint64_t{1} << 63);

  const Snapshot before = registry.snapshot();
  const Snapshot after = Snapshot::from_json(before.to_json());
  EXPECT_EQ(after.counters, before.counters);
  EXPECT_EQ(after.gauges, before.gauges);
  ASSERT_EQ(after.histograms.size(), 1u);
  const auto& hb = before.histograms.at("h.lat");
  const auto& ha = after.histograms.at("h.lat");
  EXPECT_EQ(ha.count, hb.count);
  EXPECT_EQ(ha.sum, hb.sum);
  EXPECT_EQ(ha.buckets, hb.buckets);
}

TEST(Snapshot, FromJsonRejectsGarbageAndWrongSchema) {
  EXPECT_THROW(Snapshot::from_json(""), std::invalid_argument);
  EXPECT_THROW(Snapshot::from_json("{"), std::invalid_argument);
  EXPECT_THROW(Snapshot::from_json(R"({"schema":"other/9"})"), std::invalid_argument);
}

TEST(Snapshot, MergeAddsCountersAndHistograms) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("n").add(1);
  b.counter("n").add(2);
  a.histogram("h").record(3);
  b.histogram("h").record(5);
  b.gauge("g").set(1.5);
  Snapshot merged = a.snapshot();
  merged.merge_from(b.snapshot());
  EXPECT_EQ(merged.counters.at("n"), 3u);
  EXPECT_EQ(merged.histograms.at("h").count, 2u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 1.5);
}

TEST(Snapshot, TextExpositionListsCumulativeBuckets) {
  MetricsRegistry registry;
  registry.counter("posg.tuples").add(5);
  registry.histogram("lat.ns").record(3);
  const std::string text = registry.snapshot().to_text();
  EXPECT_NE(text.find("posg_tuples 5"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
}

TEST(TraceRing, DropOldestWraparoundKeepsNewest) {
  TraceRing ring(4);
  ring.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(TraceEvent{.type = TraceEventType::kScheduleDecision,
                           .detail = 0,
                           .component = 0,
                           .instance = 0,
                           .a = i,
                           .value = 0.0,
                           .tick = 0});
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.dropped(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 6u + i);       // oldest-first payloads 6..9
    EXPECT_EQ(events[i].tick, 6u + i);    // ticks are the publish order
  }
}

TEST(TraceRing, DisabledRingRecordsNothing) {
  TraceRing ring(8);
  ring.record(TraceEvent{});
  TraceRing::Writer writer(ring);
  writer.record(TraceEvent{});
  writer.flush();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, WriterStagesUntilFlush) {
  TraceRing ring(64);
  ring.set_enabled(true);
  TraceRing::Writer writer(ring, /*stage_capacity=*/16);
  for (int i = 0; i < 5; ++i) {
    writer.record(TraceEvent{});
  }
  EXPECT_EQ(ring.recorded(), 0u);  // still staged
  writer.flush();
  EXPECT_EQ(ring.recorded(), 5u);
}

TEST(TraceRing, WriterDestructorFlushes) {
  TraceRing ring(64);
  ring.set_enabled(true);
  {
    TraceRing::Writer writer(ring);
    writer.record(TraceEvent{});
  }
  EXPECT_EQ(ring.recorded(), 1u);
}

// The TSan gate runs this: several threads each stage through their own
// Writer into one ring while another thread snapshots concurrently.
TEST(TraceRing, ConcurrentWritersPublishEverything) {
  TraceRing ring(1024);
  ring.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring, t] {
      TraceRing::Writer writer(ring, /*stage_capacity=*/32);
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        writer.record(TraceEvent{.type = TraceEventType::kSketchShip,
                                 .detail = 0,
                                 .component = static_cast<std::uint16_t>(t),
                                 .instance = static_cast<std::uint32_t>(t),
                                 .a = i,
                                 .value = 0.0,
                                 .tick = 0});
      }
    });
  }
  threads.emplace_back([&ring] {
    for (int i = 0; i < 50; ++i) {
      (void)ring.snapshot();  // reader racing the writers
    }
  });
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(ring.snapshot().size(), 1024u);
}

TEST(TraceRing, DumpJsonlEmitsOneObjectPerEvent) {
  TraceRing ring(8);
  ring.set_enabled(true);
  ring.record(TraceEvent{.type = TraceEventType::kScheduleDecision,
                         .detail = 0,
                         .component = 0,
                         .instance = 2,
                         .a = 17,
                         .value = 1.5,
                         .tick = 0});
  ring.record(TraceEvent{.type = TraceEventType::kRejoin,
                         .detail = 0,
                         .component = 0,
                         .instance = 1,
                         .a = 3,
                         .value = 0.0,
                         .tick = 0});
  std::ostringstream out;
  ring.dump_jsonl(out);
  const std::string dump = out.str();
  EXPECT_NE(dump.find("\"type\":\"schedule_decision\""), std::string::npos);
  EXPECT_NE(dump.find("\"type\":\"rejoin\""), std::string::npos);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(TraceRing, ZeroCapacityRejected) {
  EXPECT_THROW(TraceRing ring(0), std::invalid_argument);
}

TEST(ScopedTimer, NullSinkIsInertAndBoundSinkRecords) {
  obs::ScopedTimer inert(nullptr);
  Histogram h;
  {
    obs::ScopedTimer timer(&h);
  }
  EXPECT_EQ(h.count(), 1u);
}

// Registry handles must keep publishing through a scheduler's whole
// quarantine → rejoin cycle: the pull callbacks read live state, so the
// snapshot after the cycle reflects it without re-registration.
TEST(SchedulerMetrics, HandlesSurviveQuarantineAndRejoin) {
  core::PosgScheduler scheduler(3, core::PosgConfig{});
  MetricsRegistry registry;
  scheduler.register_metrics(registry);

  for (common::SeqNo seq = 0; seq < 10; ++seq) {
    (void)scheduler.schedule(seq % 5, seq);
  }
  Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("posg.scheduler.decisions"), 10u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("posg.scheduler.live_instances"), 3.0);

  scheduler.mark_failed(1);
  snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("posg.scheduler.live_instances"), 2.0);

  scheduler.rejoin(1);
  for (common::SeqNo seq = 10; seq < 20; ++seq) {
    (void)scheduler.schedule(seq % 5, seq);
  }
  snap = registry.snapshot();
  EXPECT_DOUBLE_EQ(snap.gauges.at("posg.scheduler.live_instances"), 3.0);
  EXPECT_EQ(snap.counters.at("posg.scheduler.rejoins"), 1u);
  EXPECT_EQ(snap.counters.at("posg.scheduler.decisions"), 20u);
}

TEST(SchedulerTrace, DecisionsAndRejoinsReachTheRing) {
  core::PosgScheduler scheduler(3, core::PosgConfig{});
  TraceRing ring(256);
  ring.set_enabled(true);
  scheduler.bind_trace(&ring);

  for (common::SeqNo seq = 0; seq < 8; ++seq) {
    (void)scheduler.schedule(seq, seq);
  }
  scheduler.mark_failed(2);
  scheduler.rejoin(2);  // rejoin flushes the staged writer
  const auto events = ring.snapshot();

  std::size_t decisions = 0;
  std::size_t rejoins = 0;
  for (const TraceEvent& event : events) {
    if (event.type == TraceEventType::kScheduleDecision) {
      ++decisions;
    } else if (event.type == TraceEventType::kRejoin) {
      ++rejoins;
      EXPECT_EQ(event.instance, 2u);
    }
  }
  EXPECT_EQ(decisions, 8u);
  EXPECT_EQ(rejoins, 1u);

  // Unbinding flushes and detaches; further decisions must not arrive.
  scheduler.bind_trace(nullptr);
  const std::uint64_t before = ring.recorded();
  (void)scheduler.schedule(0, 100);
  EXPECT_EQ(ring.recorded(), before);
}

}  // namespace
}  // namespace posg
