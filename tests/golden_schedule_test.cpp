/// Golden-sequence lock on the POSG scheduling stream.
///
/// The hot-path work (one-pass digests, fastmod bucket reduction, the
/// incremental greedy argmin) is only admissible because every transform
/// is bit-identical: the scheduler must emit byte-for-byte the same
/// instance sequence as the straightforward reference implementation.
/// These tests pin that stream against constants generated from the
/// pre-optimization scheduler (plain linear greedy scan, per-call row
/// hashing) on a workload that crosses every scheduler state:
/// ROUND_ROBIN warm-up, SEND_ALL marker piggy-backing, WAIT_ALL/RUN
/// greedy scheduling, delayed + flushed sync replies, a mid-run sketch
/// re-shipment (epoch restart), an instance failure, and latency hints.
///
/// Covered regimes: k = 4 exercises the small-k linear argmin, k = 50 the
/// indexed-heap argmin (see core/greedy_index.hpp). If an optimization
/// changes any of these sequences, it is not an optimization — it is a
/// behaviour change and must be rejected.
///
/// Regenerating (only legitimate after an *intentional* policy change) —
/// one g++ command, wrapped here for width:
///   g++ -std=c++20 -O2 -DGOLDEN_GENERATE -I src tests/golden_schedule_test.cpp
///       src/core/posg_scheduler.cpp src/hash/two_universal.cpp
///       src/sketch/dual_sketch.cpp src/sketch/space_saving.cpp
///       src/common/prng.cpp -o /tmp/golden_gen && /tmp/golden_gen

#include <cstdint>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "core/config.hpp"
#include "core/posg_scheduler.hpp"

#ifndef GOLDEN_GENERATE
#include <gtest/gtest.h>
#endif

namespace posg {
namespace {

/// FNV-1a over the instance sequence: one mismatch anywhere changes the
/// hash, so a single constant pins the entire stream.
std::uint64_t sequence_hash(const std::vector<common::InstanceId>& sequence) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const common::InstanceId instance : sequence) {
    h ^= static_cast<std::uint64_t>(instance);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// Deterministic end-to-end drive of one PosgScheduler. Every source of
/// input (items, sketch contents, reply deltas, failure timing) is fixed,
/// so the returned instance sequence is a pure function of the scheduler's
/// decision logic.
std::vector<common::InstanceId> run_schedule_stream(std::size_t k, bool with_failure,
                                                    bool with_hints) {
  core::PosgConfig config;
  config.epsilon = 0.05;  // 54 columns — the paper's coarse sketch
  config.delta = 0.1;     // 4 rows

  core::PosgScheduler scheduler(k, config);
  const auto dims = config.dims();
  common::Xoshiro256StarStar rng(42);

  if (with_hints) {
    std::vector<common::TimeMs> hints(k);
    for (std::size_t op = 0; op < k; ++op) {
      hints[op] = static_cast<double>(op % 3) * 0.25;
    }
    scheduler.set_latency_hints(std::move(hints));
  }

  std::vector<common::InstanceId> sequence;
  common::SeqNo seq = 0;

  // Phase 1: ROUND_ROBIN until every instance shipped a sketch. Interleave
  // scheduling with the shipments so the rotation is exercised too.
  for (common::InstanceId op = 0; op < k; ++op) {
    sequence.push_back(scheduler.schedule(rng.next_below(256), seq++).instance);
    sketch::DualSketch sketch(dims, config.sketch_seed);
    for (int i = 0; i < 400; ++i) {
      const common::Item item = rng.next_below(256);
      sketch.update(item, 0.5 + static_cast<double>(item % 7));
    }
    scheduler.on_sketches(core::SketchShipment{op, sketch});
  }

  // Phase 2: 2000 tuples across SEND_ALL -> WAIT_ALL -> RUN, with sync
  // replies trickling in every 5th tuple, one mid-run re-shipment (epoch
  // restart) and optionally one failure.
  std::vector<std::pair<common::InstanceId, core::SyncRequest>> pending_markers;
  for (int step = 0; step < 2000; ++step) {
    const common::Item item = rng.next_below(256);
    const core::Decision decision = scheduler.schedule(item, seq++);
    sequence.push_back(decision.instance);
    if (decision.sync_request) {
      pending_markers.emplace_back(decision.instance, *decision.sync_request);
    }
    if (!pending_markers.empty() && step % 5 == 4) {
      const auto [op, marker] = pending_markers.front();
      pending_markers.erase(pending_markers.begin());
      const common::TimeMs delta = static_cast<double>(step % 3 - 1) * 0.125;
      scheduler.on_sync_reply(core::SyncReply{op, marker.epoch, delta});
    }
    if (with_failure && step == 700) {
      scheduler.mark_failed(k / 2);
    }
    if (step == 1000) {
      sketch::DualSketch sketch(dims, config.sketch_seed);
      for (int i = 0; i < 300; ++i) {
        const common::Item item2 = rng.next_below(256);
        sketch.update(item2, 1.0 + static_cast<double>(item2 % 5));
      }
      scheduler.on_sketches(core::SketchShipment{0, sketch});
    }
  }

  // Phase 3: flush the leftover replies (stale ones are discarded by
  // design), then a tail of pure greedy scheduling.
  for (const auto& [op, marker] : pending_markers) {
    scheduler.on_sync_reply(core::SyncReply{op, marker.epoch, 0.0});
  }
  for (int step = 0; step < 200; ++step) {
    sequence.push_back(scheduler.schedule(rng.next_below(256), seq++).instance);
  }

  scheduler.debug_validate();
  return sequence;
}

}  // namespace
}  // namespace posg

#ifdef GOLDEN_GENERATE

#include <cstdio>

int main() {
  const struct {
    const char* name;
    std::size_t k;
    bool with_failure;
    bool with_hints;
  } cases[] = {
      {"SmallKPlain", 4, false, false},
      {"SmallKFailureAndHints", 4, true, true},
      {"LargeKPlain", 50, false, false},
      {"LargeKFailureAndHints", 50, true, true},
  };
  for (const auto& c : cases) {
    const auto sequence = posg::run_schedule_stream(c.k, c.with_failure, c.with_hints);
    std::printf("%s: size=%zu hash=0x%016llXULL\n", c.name, sequence.size(),
                static_cast<unsigned long long>(posg::sequence_hash(sequence)));
  }
  return 0;
}

#else  // !GOLDEN_GENERATE

namespace posg {
namespace {

struct GoldenCase {
  const char* name;
  std::size_t k;
  bool with_failure;
  bool with_hints;
  std::size_t expected_size;
  std::uint64_t expected_hash;
};

// Generated from the pre-optimization scheduler (see file header).
constexpr GoldenCase kGoldenCases[] = {
    {"SmallKPlain", 4, false, false, 2204, 0x26D06FEF7EF37F4AULL},
    {"SmallKFailureAndHints", 4, true, true, 2204, 0x8F1CCCFB9AA88D53ULL},
    {"LargeKPlain", 50, false, false, 2250, 0x460BFE6B24A20D73ULL},
    {"LargeKFailureAndHints", 50, true, true, 2250, 0x3E17E4435E47AE8EULL},
};

class GoldenSchedule : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(GoldenSchedule, SequenceMatchesPreOptimizationScheduler) {
  const GoldenCase& c = GetParam();
  const auto sequence = run_schedule_stream(c.k, c.with_failure, c.with_hints);
  EXPECT_EQ(sequence.size(), c.expected_size);
  EXPECT_EQ(sequence_hash(sequence), c.expected_hash)
      << "scheduling stream diverged from the golden sequence for " << c.name
      << " — the optimization changed scheduling behaviour";
}

/// Same workload scheduled twice must agree decision-for-decision — the
/// run-to-run determinism half of the golden guarantee (the constants
/// above pin version-to-version determinism).
TEST(GoldenSchedule, RepeatedRunsAreIdentical) {
  const auto first = run_schedule_stream(50, true, true);
  const auto second = run_schedule_stream(50, true, true);
  ASSERT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Cases, GoldenSchedule, ::testing::ValuesIn(kGoldenCases),
                         [](const ::testing::TestParamInfo<GoldenCase>& param_info) {
                           return std::string(param_info.param.name);
                         });

}  // namespace
}  // namespace posg

#endif  // GOLDEN_GENERATE
