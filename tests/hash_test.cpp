// Unit + property tests for the Carter-Wegman 2-universal hash family.
#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hpp"
#include "hash/two_universal.hpp"

namespace {

using namespace posg;
using hash::HashSet;
using hash::TwoUniversalHash;

TEST(TwoUniversalHash, StaysInCodomain) {
  common::Xoshiro256StarStar rng(1);
  for (std::uint64_t c : {1ULL, 2ULL, 54ULL, 1000ULL}) {
    const auto h = TwoUniversalHash::sample(rng, c);
    for (common::Item x = 0; x < 5000; ++x) {
      EXPECT_LT(h(x), c);
    }
  }
}

TEST(TwoUniversalHash, IsDeterministic) {
  TwoUniversalHash h(12345, 678, 54);
  for (common::Item x = 0; x < 100; ++x) {
    EXPECT_EQ(h(x), h(x));
  }
}

TEST(TwoUniversalHash, RejectsBadParameters) {
  EXPECT_THROW(TwoUniversalHash(0, 0, 10), std::invalid_argument);          // a = 0
  EXPECT_THROW(TwoUniversalHash(1, 0, 0), std::invalid_argument);           // codomain = 0
  EXPECT_THROW(TwoUniversalHash(TwoUniversalHash::kPrime, 0, 10),
               std::invalid_argument);                                      // a >= p
  EXPECT_THROW(TwoUniversalHash(1, TwoUniversalHash::kPrime, 10),
               std::invalid_argument);                                      // b >= p
}

TEST(TwoUniversalHash, ModularArithmeticMatchesNaive) {
  // Cross-check the Mersenne folding against a slow 128-bit computation.
  common::Xoshiro256StarStar rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t a = 1 + rng.next_below(TwoUniversalHash::kPrime - 1);
    const std::uint64_t b = rng.next_below(TwoUniversalHash::kPrime);
    const std::uint64_t c = 1 + rng.next_below(10'000);
    const std::uint64_t x = rng.next_below(1ULL << 62);
    TwoUniversalHash h(a, b, c);
    const auto expected = static_cast<std::uint64_t>(
        ((static_cast<common::Uint128>(a) * x + b) % TwoUniversalHash::kPrime) % c);
    EXPECT_EQ(h(x), expected);
  }
}

/// Property: empirical collision probability over random family members is
/// at most ~1/c (2-universality). Parameterized over codomain sizes.
class CollisionProbability : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollisionProbability, IsAtMostOneOverC) {
  const std::uint64_t c = GetParam();
  common::Xoshiro256StarStar rng(c * 31 + 7);
  const int families = 4000;
  int collisions = 0;
  // Fixed pair of distinct items; the randomness is over the family draw.
  const common::Item x = 17;
  const common::Item y = 4242;
  for (int f = 0; f < families; ++f) {
    const auto h = TwoUniversalHash::sample(rng, c);
    collisions += h(x) == h(y);
  }
  const double rate = static_cast<double>(collisions) / families;
  // 1/c plus generous sampling slack (3 sigma of a Bernoulli(1/c) mean).
  const double slack = 3.0 * std::sqrt((1.0 / static_cast<double>(c)) / families);
  EXPECT_LE(rate, 1.0 / static_cast<double>(c) + slack + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Codomains, CollisionProbability,
                         ::testing::Values(2, 4, 8, 54, 256, 544));

TEST(HashSet, DerivesSameFunctionsFromSameSeed) {
  HashSet a(99, 4, 54);
  HashSet b(99, 4, 54);
  EXPECT_EQ(a, b);
  for (std::size_t row = 0; row < 4; ++row) {
    for (common::Item x = 0; x < 500; ++x) {
      EXPECT_EQ(a.bucket(row, x), b.bucket(row, x));
    }
  }
}

TEST(HashSet, DifferentSeedsGiveDifferentFunctions) {
  HashSet a(1, 4, 54);
  HashSet b(2, 4, 54);
  EXPECT_FALSE(a == b);
  int agreements = 0;
  for (common::Item x = 0; x < 1000; ++x) {
    agreements += a.bucket(0, x) == b.bucket(0, x);
  }
  // Unrelated functions agree with probability ~1/54.
  EXPECT_LT(agreements, 100);
}

TEST(HashSet, RowsAreIndependentFunctions) {
  HashSet set(5, 4, 54);
  int agreements = 0;
  for (common::Item x = 0; x < 1000; ++x) {
    agreements += set.bucket(0, x) == set.bucket(1, x);
  }
  EXPECT_LT(agreements, 100);
}

TEST(HashSet, RejectsZeroRows) {
  EXPECT_THROW(HashSet(1, 0, 10), std::invalid_argument);
}

TEST(HashSet, ExposesParameters) {
  HashSet set(5, 4, 54);
  EXPECT_EQ(set.rows(), 4u);
  EXPECT_EQ(set.codomain(), 54u);
  EXPECT_EQ(set.seed(), 5u);
  EXPECT_EQ(set.function(0).codomain(), 54u);
  EXPECT_THROW(set.function(4), std::out_of_range);
}

}  // namespace
