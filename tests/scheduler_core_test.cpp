// Unit + property tests for the scheduling policies: round-robin, the
// greedy oracle baselines (incl. the Theorem 4.2 bound), and the POSG
// scheduler's four-state protocol.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/prng.hpp"
#include "core/backlog_oracle.hpp"
#include "core/full_knowledge.hpp"
#include "core/instance_tracker.hpp"
#include "core/posg_scheduler.hpp"
#include "core/reactive_jsq.hpp"
#include "core/round_robin.hpp"
#include "core/two_choices.hpp"

namespace {

using namespace posg;
using core::Decision;
using core::FullKnowledgeScheduler;
using core::InstanceTracker;
using core::PosgConfig;
using core::PosgScheduler;
using core::RoundRobinScheduler;

TEST(RoundRobin, CyclesThroughInstances) {
  RoundRobinScheduler rr(3);
  for (common::SeqNo i = 0; i < 12; ++i) {
    const Decision d = rr.schedule(42, i);
    EXPECT_EQ(d.instance, i % 3);
    EXPECT_FALSE(d.sync_request.has_value());
  }
}

TEST(RoundRobin, IgnoresTupleContent) {
  RoundRobinScheduler rr(2);
  EXPECT_EQ(rr.schedule(7, 0).instance, 0u);
  EXPECT_EQ(rr.schedule(7, 1).instance, 1u);
  EXPECT_EQ(rr.schedule(99, 2).instance, 0u);
}

TEST(FullKnowledge, PicksInstanceMinimizingResultingLoad) {
  // Non-uniform instances: cost depends on the instance.
  FullKnowledgeScheduler fk(2, [](common::Item, common::InstanceId op, common::SeqNo) {
    return op == 0 ? 10.0 : 4.0;
  });
  EXPECT_EQ(fk.schedule(1, 0).instance, 1u);  // 0+4 < 0+10
  EXPECT_EQ(fk.schedule(1, 1).instance, 1u);  // 4+4 < 0+10
  EXPECT_EQ(fk.schedule(1, 2).instance, 0u);  // 8+4 > 0+10
}

/// Theorem 4.2 property: the greedy online schedule's makespan is at most
/// (2 - 1/k) times the optimal, hence at most (2 - 1/k) times the lower
/// bound max(total/k, w_max). Parameterized over k.
class GreedyBound : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GreedyBound, MakespanWithinTwoMinusOneOverK) {
  const std::size_t k = GetParam();
  common::Xoshiro256StarStar rng(k * 101 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t m = 50 + rng.next_below(200);
    std::vector<double> costs(m);
    for (auto& c : costs) {
      c = 1.0 + static_cast<double>(rng.next_below(64));
    }
    FullKnowledgeScheduler greedy(
        k, [&costs](common::Item item, common::InstanceId, common::SeqNo) {
          return costs[item];
        });
    for (common::SeqNo i = 0; i < m; ++i) {
      greedy.schedule(i, i);
    }
    const auto& loads = greedy.cumulated_loads();
    const double makespan = *std::max_element(loads.begin(), loads.end());
    const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
    const double wmax = *std::max_element(costs.begin(), costs.end());
    const double opt_lower_bound = std::max(total / static_cast<double>(k), wmax);
    EXPECT_LE(makespan,
              (2.0 - 1.0 / static_cast<double>(k)) * opt_lower_bound + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, GreedyBound, ::testing::Values(1, 2, 3, 5, 10));

TEST(GreedyBound, PaperTightnessExampleReachesTheBound) {
  // Sec. IV-A: k(k-1) tuples of cost wmax/k followed by one of cost wmax
  // drive greedy to exactly (2 - 1/k) * OPT (OPT = wmax).
  const std::size_t k = 5;
  const double wmax = 10.0;
  std::vector<double> costs(k * (k - 1), wmax / static_cast<double>(k));
  costs.push_back(wmax);
  FullKnowledgeScheduler greedy(
      k, [&costs](common::Item item, common::InstanceId, common::SeqNo) { return costs[item]; });
  for (common::SeqNo i = 0; i < costs.size(); ++i) {
    greedy.schedule(i, i);
  }
  const auto& loads = greedy.cumulated_loads();
  const double makespan = *std::max_element(loads.begin(), loads.end());
  EXPECT_NEAR(makespan, (2.0 - 1.0 / static_cast<double>(k)) * wmax, 1e-9);
}

TEST(BacklogOracle, SubtractsExecutedWork) {
  core::BacklogOracleScheduler scheduler(2, [](common::Item, common::InstanceId,
                                               common::SeqNo) { return 5.0; });
  EXPECT_EQ(scheduler.schedule(1, 0).instance, 0u);
  EXPECT_EQ(scheduler.schedule(1, 1).instance, 1u);
  // Instance 0 finishes its tuple: its backlog returns to zero.
  scheduler.on_tuple_executed(0, 5.0);
  EXPECT_EQ(scheduler.schedule(1, 2).instance, 0u);
  EXPECT_THROW(scheduler.on_tuple_executed(9, 1.0), std::invalid_argument);
}

TEST(ReactiveJsq, RoutesByReportedBacklogPlusSent) {
  core::ReactiveJsqScheduler scheduler(2);
  // No reports yet: ties resolve to instance 0, then stay there (no cost
  // knowledge, mean = 0) — degenerate but well-defined.
  EXPECT_EQ(scheduler.schedule(1, 0).instance, 0u);
  // Reports arrive: instance 0 is loaded, instance 1 idle.
  scheduler.on_load_report(0, 100.0, 5.0);
  scheduler.on_load_report(1, 0.0, 5.0);
  EXPECT_EQ(scheduler.schedule(1, 1).instance, 1u);
  // Everything sent since the report is valued at the mean (5.0); after
  // 20 sends instance 1 looks as loaded as instance 0.
  for (int i = 0; i < 19; ++i) {
    EXPECT_EQ(scheduler.schedule(1, 2 + i).instance, 1u);
  }
  EXPECT_EQ(scheduler.schedule(1, 50).instance, 0u);
}

TEST(ReactiveJsq, FreshReportResetsTheCounter) {
  core::ReactiveJsqScheduler scheduler(2);
  scheduler.on_load_report(0, 10.0, 1.0);
  scheduler.on_load_report(1, 0.0, 1.0);
  for (int i = 0; i < 5; ++i) {
    scheduler.schedule(1, i);
  }
  scheduler.on_load_report(1, 0.0, 1.0);  // instance 1 drained everything
  EXPECT_EQ(scheduler.schedule(1, 10).instance, 1u);
  EXPECT_THROW(scheduler.on_load_report(7, 0.0, 1.0), std::invalid_argument);
}

TEST(TwoChoices, SamplesOnlyValidInstancesAndBalances) {
  core::TwoChoicesScheduler scheduler(
      4, [](common::Item, common::InstanceId, common::SeqNo) { return 1.0; }, 2, 99);
  std::vector<int> counts(4, 0);
  for (common::SeqNo i = 0; i < 4000; ++i) {
    const auto d = scheduler.schedule(1, i);
    ASSERT_LT(d.instance, 4u);
    ++counts[d.instance];
  }
  // Two-choices with equal costs balances closely (much better than the
  // sqrt spread of random assignment).
  for (int count : counts) {
    EXPECT_NEAR(count, 1000, 100);
  }
}

TEST(TwoChoices, SingleChoiceIsRandomAssignment) {
  core::TwoChoicesScheduler scheduler(
      3, [](common::Item, common::InstanceId, common::SeqNo) { return 1.0; }, 1, 7);
  std::vector<int> counts(3, 0);
  for (common::SeqNo i = 0; i < 3000; ++i) {
    ++counts[scheduler.schedule(1, i).instance];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 1000, 150);
  }
}

TEST(TwoChoices, ValidatesParameters) {
  auto oracle = [](common::Item, common::InstanceId, common::SeqNo) { return 1.0; };
  EXPECT_THROW(core::TwoChoicesScheduler(2, oracle, 0), std::invalid_argument);
  EXPECT_THROW(core::TwoChoicesScheduler(2, oracle, 3), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// POSG scheduler protocol
// ---------------------------------------------------------------------------

PosgConfig test_config() {
  PosgConfig config;
  config.window = 4;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  return config;
}

/// Builds one stable shipment for instance `op` by running a tracker on a
/// constant-cost item stream.
core::SketchShipment make_shipment(common::InstanceId op, const PosgConfig& config,
                                   common::Item item = 1, common::TimeMs cost = 2.0) {
  InstanceTracker tracker(op, config);
  for (int i = 0; i < 1000; ++i) {
    if (auto shipment = tracker.on_executed(item, cost)) {
      return *shipment;
    }
  }
  throw std::logic_error("make_shipment: tracker never stabilized");
}

TEST(PosgScheduler, StartsInRoundRobinAndCycles) {
  PosgScheduler scheduler(3, test_config());
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRoundRobin);
  for (common::SeqNo i = 0; i < 9; ++i) {
    const Decision d = scheduler.schedule(5, i);
    EXPECT_EQ(d.instance, i % 3);
    EXPECT_FALSE(d.sync_request.has_value());
  }
  EXPECT_FALSE(scheduler.estimate(5).has_value());
}

TEST(PosgScheduler, StaysRoundRobinUntilAllInstancesShipped) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  scheduler.on_sketches(make_shipment(0, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRoundRobin);
  scheduler.on_sketches(make_shipment(1, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRoundRobin);
  scheduler.on_sketches(make_shipment(2, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  EXPECT_EQ(scheduler.epoch(), 1u);
}

TEST(PosgScheduler, SendAllPiggybacksExactlyOneMarkerPerInstance) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<int> markers(3, 0);
  for (common::SeqNo i = 0; i < 3; ++i) {
    const Decision d = scheduler.schedule(1, i);
    if (d.sync_request) {
      ++markers[d.instance];
      EXPECT_EQ(d.sync_request->epoch, 1u);
      // The piggy-backed estimate covers this tuple too (consistent cut).
      EXPECT_GT(d.sync_request->estimated_cumulated, 0.0);
    }
  }
  EXPECT_EQ(markers, (std::vector<int>{1, 1, 1}));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
}

TEST(PosgScheduler, SyncCompletesAndCorrectsDrift) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config, 1, 2.0));
  scheduler.on_sketches(make_shipment(1, config, 1, 2.0));

  // Drain SEND_ALL; capture markers.
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    ASSERT_TRUE(d.sync_request.has_value());
    requests[d.instance] = *d.sync_request;
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);

  // Instances reply with known drifts (Δ = C_real − Ĉ_marker; the negative
  // one stays above −Ĉ, as any honest instance's reply must).
  scheduler.on_sync_reply({0, requests[0].epoch, 10.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  const auto loads_before = scheduler.estimated_loads();
  scheduler.on_sync_reply({1, requests[1].epoch, -1.5});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  const auto& loads_after = scheduler.estimated_loads();
  EXPECT_NEAR(loads_after[0], loads_before[0] + 10.0, 1e-12);
  EXPECT_NEAR(loads_after[1], loads_before[1] - 1.5, 1e-12);
}

TEST(PosgScheduler, DriftCorrectionClampsAtZero) {
  // Ĉ >= 0 is a checked invariant (debug_validate): a Δ more negative
  // than Ĉ — float rounding, or a buggy/byzantine reply — must clamp at
  // zero rather than produce a negative estimated load.
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config, 1, 2.0));
  scheduler.on_sketches(make_shipment(1, config, 1, 2.0));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    ASSERT_TRUE(d.sync_request.has_value());
    requests[d.instance] = *d.sync_request;
  }
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  scheduler.on_sync_reply({1, requests[1].epoch, -1000.0});
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  EXPECT_EQ(scheduler.estimated_loads()[1], 0.0);
  scheduler.debug_validate();
}

TEST(PosgScheduler, IgnoresStaleAndDuplicateReplies) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  // Stale epoch: ignored.
  scheduler.on_sync_reply({0, requests[0].epoch + 7, 100.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  // Duplicate from the same instance: second one ignored.
  scheduler.on_sync_reply({0, requests[0].epoch, 1.0});
  scheduler.on_sync_reply({0, requests[0].epoch, 999.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  scheduler.on_sync_reply({1, requests[1].epoch, 1.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(PosgScheduler, ReplyBeforeAllMarkersSentIsAccepted) {
  // Low-latency paths can deliver the first marker's reply while later
  // markers are still unsent.
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  const Decision first = scheduler.schedule(1, 0);
  ASSERT_TRUE(first.sync_request.has_value());
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  scheduler.on_sync_reply({first.instance, first.sync_request->epoch, 0.0});
  // Now send the second marker and its reply: sync must still complete.
  const Decision second = scheduler.schedule(1, 1);
  ASSERT_TRUE(second.sync_request.has_value());
  scheduler.on_sync_reply({second.instance, second.sync_request->epoch, 0.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(PosgScheduler, RunStateUsesGreedyOnEstimatedLoads) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config, 1, 4.0));
  scheduler.on_sketches(make_shipment(1, config, 1, 4.0));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  scheduler.on_sync_reply({1, requests[1].epoch, 0.0});
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);

  // Both instances were billed one 4.0 tuple during SEND_ALL; the greedy
  // alternates, keeping the estimated loads within one tuple cost.
  for (common::SeqNo i = 2; i < 42; ++i) {
    scheduler.schedule(1, i);
    const auto& loads = scheduler.estimated_loads();
    EXPECT_LE(std::abs(loads[0] - loads[1]), 4.0 + 1e-9);
  }
}

TEST(PosgScheduler, EstimateMatchesTrainedCost) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config, 7, 12.0));
  scheduler.on_sketches(make_shipment(1, config, 7, 12.0));
  const auto estimate = scheduler.estimate(7);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 12.0, 1e-9);
}

TEST(PosgScheduler, UnseenItemFallsBackToGlobalMean) {
  auto config = test_config();
  config.epsilon = 0.001;  // wide sketch: cross-item collisions unlikely
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config, 7, 10.0));
  scheduler.on_sketches(make_shipment(1, config, 7, 20.0));
  const auto estimate = scheduler.estimate(424242);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_NEAR(*estimate, 15.0, 1e-9);  // global mean over both shipments
}

TEST(PosgScheduler, NewShipmentRestartsSynchronization) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  scheduler.on_sync_reply({1, requests[1].epoch, 0.0});
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);

  // Fig. 3.F: new matrices in RUN -> back to SEND_ALL with a fresh epoch.
  scheduler.on_sketches(make_shipment(0, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  EXPECT_EQ(scheduler.epoch(), 2u);
}

TEST(PosgScheduler, SyncDisabledSkipsProtocol) {
  auto config = test_config();
  config.sync_enabled = false;
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  const Decision d = scheduler.schedule(1, 0);
  EXPECT_FALSE(d.sync_request.has_value());
  // Further shipments keep it in RUN.
  scheduler.on_sketches(make_shipment(1, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(PosgScheduler, PerInstanceBillingUsesTargetSketch) {
  auto config = test_config();
  config.shared_billing = false;
  config.epsilon = 0.001;
  PosgScheduler scheduler(2, config);
  // Instance 0 saw item 7 at 10 ms, instance 1 at 30 ms (non-uniform
  // instances).
  scheduler.on_sketches(make_shipment(0, config, 7, 10.0));
  scheduler.on_sketches(make_shipment(1, config, 7, 30.0));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(7, i);
    requests[d.instance] = *d.sync_request;
  }
  // During SEND_ALL, instance 0 was billed 10 and instance 1 was billed 30.
  EXPECT_NEAR(scheduler.estimated_loads()[0], 10.0, 1e-9);
  EXPECT_NEAR(scheduler.estimated_loads()[1], 30.0, 1e-9);
}

TEST(PosgScheduler, LatencyHintsBiasTheGreedyPick) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sketches(make_shipment(op, config, 1, 2.0));
  }
  std::vector<core::SyncRequest> requests(3);
  for (common::SeqNo i = 0; i < 3; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sync_reply({op, requests[op].epoch, 0.0});
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);

  // All Ĉ equal (each instance was billed one 2.0 tuple). With hints, the
  // zero-latency instance must win the tie; without, instance 0 wins.
  scheduler.set_latency_hints({50.0, 0.0, 50.0});
  EXPECT_EQ(scheduler.schedule(1, 10).instance, 1u);

  EXPECT_THROW(scheduler.set_latency_hints({1.0}), std::invalid_argument);
  scheduler.set_latency_hints({});  // back to latency-oblivious
  EXPECT_TRUE(scheduler.latency_hints().empty());
}

TEST(PosgScheduler, LostReplyDoesNotStallScheduling) {
  // Failure injection: one instance never answers its marker (crashed or
  // partitioned). The scheduler stays in WAIT_ALL for that epoch but keeps
  // scheduling greedily — no tuple is ever blocked on the protocol.
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  std::vector<core::SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  // Instance 1's reply is lost. Scheduling continues.
  for (common::SeqNo i = 2; i < 100; ++i) {
    EXPECT_LT(scheduler.schedule(1, i).instance, 2u);
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  // A later shipment restarts the protocol and unblocks the sync.
  scheduler.on_sketches(make_shipment(1, config));
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
}

TEST(PosgScheduler, RejectsInvalidMessages) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  EXPECT_THROW(scheduler.on_sketches(make_shipment(5, config)), std::invalid_argument);
  EXPECT_THROW(scheduler.on_sync_reply({9, 0, 0.0}), std::invalid_argument);
  auto wrong_layout = config;
  wrong_layout.epsilon = 0.7;
  auto shipment = make_shipment(0, wrong_layout);
  EXPECT_THROW(scheduler.on_sketches(shipment), std::invalid_argument);
}

}  // namespace
