// Tests for stream trace record/replay and its Experiment integration.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "sim/experiment.hpp"
#include "workload/distributions.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace {

using namespace posg;
namespace fs = std::filesystem;

class TraceTest : public ::testing::Test {
 protected:
  std::string path(const char* name) { return (dir_ / name).string(); }
  void SetUp() override {
    // Suffix with the pid: under `ctest -j`, concurrent test processes
    // sharing one directory race against each other's TearDown.
    dir_ = fs::temp_directory_path() /
           ("posg_trace_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(TraceTest, BinaryRoundTrip) {
  const std::vector<common::Item> stream{0, 7, 42, 7, 4095, 1};
  workload::save_trace(path("a.trace"), stream);
  EXPECT_EQ(workload::load_trace(path("a.trace")), stream);
}

TEST_F(TraceTest, BinaryRoundTripEmptyAndLarge) {
  workload::save_trace(path("empty.trace"), {});
  EXPECT_TRUE(workload::load_trace(path("empty.trace")).empty());

  workload::ZipfItems zipf(1000, 1.0);
  const auto large = workload::StreamGenerator::generate(zipf, 50'000, 3);
  workload::save_trace(path("large.trace"), large);
  EXPECT_EQ(workload::load_trace(path("large.trace")), large);
}

TEST_F(TraceTest, BinaryRejectsCorruption) {
  workload::save_trace(path("x.trace"), {1, 2, 3});
  // Truncate.
  fs::resize_file(path("x.trace"), fs::file_size(path("x.trace")) - 4);
  EXPECT_THROW(workload::load_trace(path("x.trace")), std::invalid_argument);
  // Bad magic.
  {
    std::ofstream out(path("bad.trace"), std::ios::binary);
    out << "NOTATRACE.......................";
  }
  EXPECT_THROW(workload::load_trace(path("bad.trace")), std::invalid_argument);
  // Missing file.
  EXPECT_THROW(workload::load_trace(path("ghost.trace")), std::runtime_error);
}

TEST_F(TraceTest, BinaryRejectsTrailingBytes) {
  workload::save_trace(path("t.trace"), {1, 2});
  {
    std::ofstream out(path("t.trace"), std::ios::binary | std::ios::app);
    out << "x";
  }
  EXPECT_THROW(workload::load_trace(path("t.trace")), std::invalid_argument);
}

TEST_F(TraceTest, CsvRoundTrip) {
  const std::vector<common::Item> stream{9, 0, 123456789};
  workload::save_trace_csv(path("a.csv"), stream);
  EXPECT_EQ(workload::load_trace_csv(path("a.csv")), stream);
}

TEST_F(TraceTest, CsvRejectsGarbage) {
  {
    std::ofstream out(path("bad.csv"));
    out << "item\n12\nnot-a-number\n";
  }
  EXPECT_THROW(workload::load_trace_csv(path("bad.csv")), std::invalid_argument);
  {
    std::ofstream out(path("neg.csv"));
    out << "item\n12x\n";
  }
  EXPECT_THROW(workload::load_trace_csv(path("neg.csv")), std::invalid_argument);
}

TEST_F(TraceTest, ExperimentReplaysTrace) {
  // Capture a synthetic draw, replay it: the experiment must use exactly
  // the captured stream and derive the provisioning from its empirical
  // mean.
  workload::ZipfItems zipf(256, 1.0);
  const auto captured = workload::StreamGenerator::generate(zipf, 4000, 11);
  workload::save_trace(path("replay.trace"), captured);

  sim::ExperimentConfig config;
  config.trace_path = path("replay.trace");
  config.n = 256;
  config.wn = 16;
  config.wmax = 16.0;
  config.k = 3;
  config.posg.window = 64;
  sim::Experiment experiment(config);
  EXPECT_EQ(experiment.stream(), captured);
  EXPECT_GT(experiment.mean_execution_time(), 0.0);

  const auto result = experiment.run(sim::Policy::kRoundRobin);
  EXPECT_EQ(result.raw.completions.size(), captured.size());
}

TEST_F(TraceTest, ExperimentRaisesUniverseToCoverTrace) {
  workload::save_trace(path("wide.trace"), {0, 5000, 3});
  sim::ExperimentConfig config;
  config.trace_path = path("wide.trace");
  config.n = 256;  // too small for item 5000 — must be raised
  config.wn = 4;
  config.wmax = 4.0;
  sim::Experiment experiment(config);
  EXPECT_NO_THROW(experiment.run(sim::Policy::kRoundRobin));
  EXPECT_EQ(experiment.config().n, 5001u);
  EXPECT_EQ(experiment.config().m, 3u);
}

}  // namespace
