// Unit tests for the common substrate: PRNGs, CSV emission, CLI parsing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/prng.hpp"
#include "common/types.hpp"

namespace {

using namespace posg::common;

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next();
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256StarStar rng(123);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanNearHalf) {
  Xoshiro256StarStar rng(9);
  double sum = 0.0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    sum += rng.next_double();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Xoshiro256StarStar rng(55);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowZeroBoundIsZero) {
  Xoshiro256StarStar rng(55);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Xoshiro, NextBelowIsRoughlyUniform) {
  Xoshiro256StarStar rng(321);
  const std::uint64_t bound = 10;
  std::vector<int> counts(bound, 0);
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.next_below(bound)];
  }
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], n / static_cast<int>(bound), n / 100);
  }
}

TEST(Ensure, ThrowsLogicError) {
  EXPECT_NO_THROW(ensure(true, "ok"));
  EXPECT_THROW(ensure(false, "boom"), std::logic_error);
}

TEST(Require, ThrowsInvalidArgument) {
  EXPECT_NO_THROW(require(true, "ok"));
  EXPECT_THROW(require(false, "bad input"), std::invalid_argument);
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() / "posg_csv_test.csv").string();
  void TearDown() override { std::filesystem::remove(path_); }

  std::string slurp() {
    std::ifstream in(path_);
    return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
};

TEST_F(CsvWriterTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"a", "b"});
    csv.row({"1", "2"});
    csv.row_values(3.5, "x");
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(), "a,b\n1,2\n3.5,x\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter csv(path_, {"a"});
    csv.row({"has,comma"});
    csv.row({"has\"quote"});
  }
  EXPECT_EQ(slurp(), "a\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST_F(CsvWriterTest, RejectsWidthMismatch) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(CliArgs, ParsesValuesAndFlags) {
  const char* argv[] = {"prog", "--m", "1000", "--verbose", "--rate", "2.5", "--name", "x"};
  CliArgs args(8, argv);
  EXPECT_EQ(args.get_int("m", 0), 1000);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "x");
  EXPECT_EQ(args.program(), "prog");
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("m", 7), 7);
  EXPECT_FALSE(args.has("m"));
  EXPECT_FALSE(args.get_bool("verbose", false));
}

TEST(CliArgs, RejectsMalformedOption) {
  const char* argv[] = {"prog", "loose-token"};
  EXPECT_THROW(CliArgs(2, argv), std::invalid_argument);
}

TEST(CliArgs, BooleanSpellings) {
  const char* argv[] = {"prog", "--a", "true", "--b", "0", "--c", "yes", "--d", "off"};
  CliArgs args(9, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

}  // namespace
