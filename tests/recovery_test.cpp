// In-process tests of the scheduler crash-recovery runtime (DESIGN.md §14):
// the instance side's single reconnect-or-die policy point under a scripted
// gray fault, the restored SchedulerRuntime's SchedulerHello/ReattachAck
// handshake seeding the tracker cut from the checkpoint, and the cold-start
// degradation for missing or corrupt checkpoint files.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "net/fault_injection.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "runtime/instance_runtime.hpp"
#include "runtime/scheduler_runtime.hpp"

namespace {

using namespace posg;
using runtime::InstanceRuntime;
using runtime::InstanceRuntimeConfig;
using runtime::SchedulerRuntime;
using runtime::SchedulerRuntimeConfig;

SchedulerRuntimeConfig test_runtime_config(std::size_t k) {
  SchedulerRuntimeConfig config;
  config.instances = k;
  config.posg.window = 32;
  config.posg.mu = 0.5;
  config.posg.max_windows_per_epoch = 2;
  config.recv_deadline = std::chrono::milliseconds(20);
  config.epoch_deadline = std::chrono::milliseconds(2000);
  return config;
}

struct TestInstance {
  InstanceRuntime::Stats stats;
  std::thread thread;

  void join() {
    if (thread.joinable()) {
      thread.join();
    }
  }
};

std::unique_ptr<TestInstance> spawn_instance(common::InstanceId op,
                                             const InstanceRuntimeConfig& config,
                                             net::Socket socket) {
  auto instance = std::make_unique<TestInstance>();
  instance->thread = std::thread(
      [op, config, &stats = instance->stats, socket = std::move(socket)]() mutable {
        net::SocketTransport link(std::move(socket));
        InstanceRuntime loop(op, config);
        stats = loop.run(link);
      });
  return instance;
}

void route_stream(SchedulerRuntime& rt, common::SeqNo begin, common::SeqNo end) {
  for (common::SeqNo seq = begin; seq < end; ++seq) {
    rt.route((seq * 37) % 64, seq);
    if ((seq & 31) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    if (rt.state() == core::PosgScheduler::State::kWaitAll) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

/// The gray-fault regression for the reconnect-or-die policy point: a
/// scripted one-way disconnect severs instance 0's link mid-run (EOF at
/// the instance, EPIPE/EOF at the scheduler — the gray zone where each
/// side discovers the cut at a different time). With a reconnect_path
/// configured, the instance must funnel the error through its single
/// policy point, redial, re-attach via SchedulerHello, and finish the run
/// as a full member — no process restart, no double registration.
TEST(Recovery, GrayFaultDisconnectReconnectsAndReattaches) {
  const std::size_t k = 3;
  auto config = test_runtime_config(k);
  config.allow_rejoin = true;
  SchedulerRuntime rt(config);
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_recovery_reconnect_test.sock").string();

  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    instance_config.recv_deadline = std::chrono::milliseconds(20);
    instance_config.reconnect_path = path;
    instance_config.reconnect_attempts = 3;
    auto [sched_end, inst_end] = net::socket_pair();
    if (op == 0) {
      // Sever instance 0's link after ~60 scheduler-side sends: mid-run,
      // with sketches and (likely) an epoch already in flight.
      net::FaultPlan plan;
      plan.disconnect_after(net::FaultDir::kSend, 60);
      rt.attach(op, std::make_unique<net::FaultInjector>(std::move(sched_end), plan));
    } else {
      rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    }
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  net::Listener listener(path);
  rt.enable_rejoin(listener);

  // Route until the re-attach lands. Depending on who noticed the cut
  // first, the scheduler serves the SchedulerHello over the live-reattach
  // path (reattach_count) or the quarantined-rejoin path (rejoin_log) —
  // both end with the instance holding a ReattachAck.
  common::SeqNo seq = 0;
  for (int i = 0; i < 40000 && rt.reattach_count() == 0 && rt.rejoin_log().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(rt.reattach_count() > 0 || !rt.rejoin_log().empty())
      << "the severed instance never re-attached";
  route_stream(rt, seq, seq + 4000);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  EXPECT_GE(instances[0]->stats.reconnects, 1u);
  EXPECT_GE(instances[0]->stats.reattach_acks + instances[0]->stats.rejoin_acks, 1u);
  EXPECT_FALSE(instances[0]->stats.crashed);
  EXPECT_GT(instances[0]->stats.executed, 0u);
  EXPECT_EQ(rt.live_instances(), k);  // back to full strength
  for (common::InstanceId op = 1; op < k; ++op) {
    EXPECT_EQ(instances[op]->stats.reconnects, 0u);  // only the severed link redialed
  }
}

/// Control for the policy point: with an empty reconnect_path the exact
/// same fault keeps the pre-recovery semantics — the instance's run ends
/// on the first link error and the scheduler quarantines it.
TEST(Recovery, DisconnectWithoutReconnectPathDiesAsBefore) {
  const std::size_t k = 3;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    instance_config.recv_deadline = std::chrono::milliseconds(20);
    auto [sched_end, inst_end] = net::socket_pair();
    if (op == 0) {
      net::FaultPlan plan;
      plan.disconnect_after(net::FaultDir::kSend, 60);
      rt.attach(op, std::make_unique<net::FaultInjector>(std::move(sched_end), plan));
    } else {
      rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    }
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  common::SeqNo seq = 0;
  for (int i = 0; i < 40000 && rt.quarantined().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(rt.quarantined(), (std::vector<common::InstanceId>{0}));
  route_stream(rt, seq, seq + 2000);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  EXPECT_EQ(instances[0]->stats.reconnects, 0u);
  EXPECT_EQ(instances[0]->stats.reattach_acks, 0u);
  EXPECT_EQ(rt.live_instances(), k - 1);
}

/// The restart handshake end-to-end against a real checkpoint: runtime A
/// checkpoints mid-run and dies (goes out of scope); runtime B constructs
/// with recover=true, restores A's control state, accepts SchedulerHello
/// registrations, and the ReattachAck it sends each survivor carries
/// exactly the restored Ĉ[op] as the seeded cut.
TEST(Recovery, RestartedRuntimeSeedsReattachCutsFromCheckpoint) {
  const std::size_t k = 2;
  const auto ckpt =
      (std::filesystem::temp_directory_path() / "posg_recovery_runtime_test.ckpt").string();
  std::filesystem::remove(ckpt);

  {
    auto config = test_runtime_config(k);
    config.checkpoint_path = ckpt;
    SchedulerRuntime first(config);
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    instance_config.recv_deadline = std::chrono::milliseconds(20);
    std::vector<std::unique_ptr<TestInstance>> instances;
    for (common::InstanceId op = 0; op < k; ++op) {
      auto [sched_end, inst_end] = net::socket_pair();
      first.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
      instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
    }
    first.start();
    common::SeqNo seq = 0;
    for (int i = 0; i < 60000 && first.checkpoint_writes() == 0; ++i) {
      first.route((seq * 37) % 64, seq);
      ++seq;
      if ((seq & 31) == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    }
    ASSERT_GE(first.checkpoint_writes(), 1u) << "no epoch boundary ever checkpointed";
    first.finish();
    for (auto& instance : instances) {
      instance->join();
    }
  }

  auto config = test_runtime_config(k);
  config.checkpoint_path = ckpt;
  config.recover = true;
  SchedulerRuntime second(config);
  ASSERT_TRUE(second.recovered());
  EXPECT_GT(second.recovered_epoch(), 0u);
  const auto restored_loads = second.scheduler().estimated_loads();

  // Survivors of the "crash" re-attach with SchedulerHello (hand-rolled
  // here so the test can inspect the raw ReattachAck frames).
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_recovery_runtime_test.sock").string();
  net::Listener listener(path);
  std::thread registrar([&] { second.accept_registrations(listener); });
  std::vector<net::Socket> survivors;
  for (common::InstanceId op = 0; op < k; ++op) {
    auto socket = net::connect(path);
    socket.send_frame(net::encode(net::SchedulerHello{op, second.recovered_epoch()}));
    survivors.push_back(std::move(socket));
  }
  registrar.join();
  second.start();  // sends every pending ReattachAck before the readers spin up

  for (common::InstanceId op = 0; op < k; ++op) {
    const auto frame = survivors[op].recv_frame();
    ASSERT_TRUE(frame.has_value());
    const auto message = net::decode(*frame);
    const auto* ack = std::get_if<net::ReattachAck>(&message);
    ASSERT_NE(ack, nullptr) << "first frame after a SchedulerHello must be the ReattachAck";
    EXPECT_EQ(ack->instance, op);
    EXPECT_DOUBLE_EQ(ack->seeded_cut, restored_loads[op]);
  }

  // Orderly shutdown: wait for EndOfStream, then close.
  std::thread drainer([&] {
    for (auto& socket : survivors) {
      while (auto frame = socket.recv_frame()) {
        if (std::holds_alternative<net::EndOfStream>(net::decode(*frame))) {
          break;
        }
      }
      socket.close();
    }
  });
  second.finish();
  drainer.join();
  EXPECT_GE(second.reattach_count(), k);
  std::filesystem::remove(ckpt);
}

TEST(Recovery, MissingCheckpointDegradesToColdStart) {
  auto config = test_runtime_config(2);
  config.checkpoint_path =
      (std::filesystem::temp_directory_path() / "posg_recovery_missing_test.ckpt").string();
  std::filesystem::remove(config.checkpoint_path);
  config.recover = true;
  SchedulerRuntime rt(config);
  EXPECT_FALSE(rt.recovered());
  EXPECT_EQ(rt.recovered_epoch(), 0u);
}

TEST(Recovery, CorruptCheckpointDegradesToColdStart) {
  auto config = test_runtime_config(2);
  config.checkpoint_path =
      (std::filesystem::temp_directory_path() / "posg_recovery_corrupt_test.ckpt").string();
  {
    // Valid header magic, garbage after — decode must reject, the runtime
    // must degrade, never crash.
    std::FILE* file = std::fopen(config.checkpoint_path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    const char junk[] = "PKCPthis is not a checkpoint payload";
    std::fwrite(junk, 1, sizeof(junk), file);
    std::fclose(file);
  }
  config.recover = true;
  SchedulerRuntime rt(config);
  EXPECT_FALSE(rt.recovered());
  std::filesystem::remove(config.checkpoint_path);
}

}  // namespace
