// Cross-module integration tests: the headline claims of the paper,
// exercised end-to-end on the simulator (and kept fast enough for CI).
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/stats.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace posg;
using sim::Experiment;
using sim::ExperimentConfig;
using sim::Policy;

ExperimentConfig fast_paper_config() {
  ExperimentConfig config;  // paper defaults, shrunk for test wall-time
  config.m = 16'384;
  return config;
}

double mean_speedup(const ExperimentConfig& base, Policy baseline, Policy candidate,
                    int seeds) {
  metrics::RunningStats stats;
  for (int s = 0; s < seeds; ++s) {
    ExperimentConfig config = base;
    config.stream_seed = 1000 * s + 17;
    config.assignment_seed = 1000 * s + 71;
    Experiment experiment(config);
    stats.add(experiment.run(baseline).average_completion /
              experiment.run(candidate).average_completion);
  }
  return stats.mean();
}

TEST(Headline, PosgBeatsRoundRobinOnZipf1) {
  // Fig. 4's core claim at the default workload.
  const double speedup = mean_speedup(fast_paper_config(), Policy::kRoundRobin, Policy::kPosg, 5);
  EXPECT_GT(speedup, 1.1);
}

TEST(Headline, FullKnowledgeUpperBoundsPosg) {
  metrics::RunningStats posg;
  metrics::RunningStats fk;
  for (int s = 0; s < 5; ++s) {
    ExperimentConfig config = fast_paper_config();
    config.stream_seed = 1000 * s + 17;
    config.assignment_seed = 1000 * s + 71;
    Experiment experiment(config);
    posg.add(experiment.run(Policy::kPosg).average_completion);
    fk.add(experiment.run(Policy::kFullKnowledge).average_completion);
  }
  EXPECT_LT(fk.mean(), posg.mean());
}

TEST(Headline, GainShrinksOnUniformStreams) {
  auto uniform = fast_paper_config();
  uniform.distribution = "uniform";
  const double uniform_speedup =
      mean_speedup(uniform, Policy::kRoundRobin, Policy::kPosg, 5);
  const double zipf_speedup =
      mean_speedup(fast_paper_config(), Policy::kRoundRobin, Policy::kPosg, 5);
  // The paper: ~6% at uniform vs >= 25% at Zipf-1.0.
  EXPECT_LT(uniform_speedup, zipf_speedup);
  EXPECT_GT(uniform_speedup, 0.9);  // never catastrophically worse
}

TEST(Headline, SyncProtocolCarriesItsWeight) {
  // Ablation: disabling the marker/Δ synchronization must not help.
  auto with_sync = fast_paper_config();
  auto without_sync = fast_paper_config();
  without_sync.posg.sync_enabled = false;
  metrics::RunningStats with_stats;
  metrics::RunningStats without_stats;
  for (int s = 0; s < 5; ++s) {
    auto config = with_sync;
    config.stream_seed = 1000 * s + 17;
    config.assignment_seed = 1000 * s + 71;
    with_stats.add(Experiment(config).run(Policy::kPosg).average_completion);
    auto config2 = without_sync;
    config2.stream_seed = 1000 * s + 17;
    config2.assignment_seed = 1000 * s + 71;
    without_stats.add(Experiment(config2).run(Policy::kPosg).average_completion);
  }
  EXPECT_LE(with_stats.mean(), without_stats.mean() * 1.05);
}

TEST(Adaptation, PosgRecoversFromLoadDrift) {
  // The Fig. 10 scenario, shrunk: instance speeds change mid-stream; POSG
  // must end the run no worse than round-robin in the final stretch.
  ExperimentConfig config = fast_paper_config();
  config.m = 24'000;
  config.phases = {{0, {1.05, 1.025, 1.0, 0.975, 0.95}},
                   {12'000, {0.90, 0.95, 1.0, 1.05, 1.10}}};
  config.stream_seed = 4321;
  config.assignment_seed = 1234;
  Experiment experiment(config);
  const auto rr = experiment.run(Policy::kRoundRobin);
  const auto posg = experiment.run(Policy::kPosg);

  auto tail_mean = [&](const sim::ExperimentResult& result) {
    double sum = 0.0;
    std::size_t count = 0;
    for (common::SeqNo seq = 20'000; seq < 24'000; ++seq) {
      const double value = result.raw.completions.at(seq);
      if (!std::isnan(value)) {
        sum += value;
        ++count;
      }
    }
    return sum / static_cast<double>(count);
  };
  EXPECT_LT(tail_mean(posg), tail_mean(rr) * 1.05);
}

TEST(Communication, ShipmentCountMatchesTheorem33Scale) {
  // Thm 3.3: O(m/N) control messages. Verify the measured count is within
  // a small constant of m/N (per instance pair of matrices counted once).
  ExperimentConfig config = fast_paper_config();
  config.m = 16'384;
  Experiment experiment(config);
  const auto result = experiment.run(Policy::kPosg);
  // Each shipment opens an epoch of k markers + k replies, and shipments
  // happen at most once per window per instance: <= (2k+1) * m/N total.
  const double mn = static_cast<double>(config.m) / static_cast<double>(config.posg.window);
  EXPECT_LE(result.raw.messages.control_total(),
            (2.0 * static_cast<double>(config.k) + 1.0) * mn);
  EXPECT_GT(result.raw.messages.sketch_shipments, 0u);
}

TEST(SharedBillingAblation, PerInstanceBillingStillFunctions) {
  auto config = fast_paper_config();
  config.posg.shared_billing = false;
  Experiment experiment(config);
  const auto result = experiment.run(Policy::kPosg);
  EXPECT_EQ(result.raw.completions.size(), config.m);
}

}  // namespace
