// Bit-level determinism of the simulation stack: identical configuration
// must yield identical results, for every policy — the property the whole
// experimental methodology rests on (the paper compares algorithms on
// identical streams; we additionally guarantee identical *runs*).
#include <gtest/gtest.h>

#include <cmath>

#include "sim/experiment.hpp"

namespace {

using namespace posg;
using sim::Experiment;
using sim::ExperimentConfig;
using sim::Policy;

class Determinism : public ::testing::TestWithParam<Policy> {};

TEST_P(Determinism, IdenticalConfigYieldsIdenticalRun) {
  ExperimentConfig config;
  config.n = 512;
  config.m = 5000;
  config.wn = 16;
  config.wmax = 16.0;
  config.k = 4;
  config.posg.window = 64;
  config.load_report_period = 8.0;
  config.stream_seed = 31;
  config.assignment_seed = 41;

  Experiment first(config);
  Experiment second(config);
  const auto a = first.run(GetParam());
  const auto b = second.run(GetParam());

  ASSERT_EQ(a.raw.completions.size(), b.raw.completions.size());
  for (common::SeqNo seq = 0; seq < config.m; ++seq) {
    const double left = a.raw.completions.at(seq);
    const double right = b.raw.completions.at(seq);
    ASSERT_EQ(std::isnan(left), std::isnan(right));
    if (!std::isnan(left)) {
      ASSERT_EQ(left, right) << "tuple " << seq;  // bit-identical, no tolerance
    }
  }
  EXPECT_EQ(a.raw.instance_tuples, b.raw.instance_tuples);
  EXPECT_EQ(a.raw.messages.sketch_shipments, b.raw.messages.sketch_shipments);
  EXPECT_EQ(a.raw.messages.sync_replies, b.raw.messages.sync_replies);
  EXPECT_EQ(a.raw.makespan, b.raw.makespan);
}

INSTANTIATE_TEST_SUITE_P(Policies, Determinism,
                         ::testing::Values(Policy::kRoundRobin, Policy::kPosg,
                                           Policy::kFullKnowledge, Policy::kBacklogOracle,
                                           Policy::kReactiveJsq, Policy::kTwoChoices));

TEST(Determinism, DifferentSeedsDiffer) {
  ExperimentConfig config;
  config.n = 512;
  config.m = 5000;
  config.wn = 16;
  config.wmax = 16.0;
  config.k = 4;
  config.posg.window = 64;

  Experiment a(config);
  config.stream_seed += 1;
  Experiment b(config);
  EXPECT_NE(a.run(Policy::kPosg).average_completion,
            b.run(Policy::kPosg).average_completion);
}

}  // namespace
