/// Multi-source scheduler tier (DESIGN.md §15): S scheduler views over one
/// shared core::InstancePool.
///
/// Locks the four load-bearing guarantees of the tier:
///   1. S = 1 byte-identity — a MultiSourceScheduler with one source and
///      per_source_greedy reconciliation reproduces the golden scheduling
///      streams bit for bit (the same constants golden_schedule_test pins
///      for the bare PosgScheduler).
///   2. Conservation — with S sources round-robining one stream over the
///      shared pool, every routed tuple is executed exactly once and
///      billed to exactly one view: Σ_s routed_s == Σ_op executed_op ==
///      |stream|, row by row.
///   3. Membership is pool state, not view state — a quarantine initiated
///      through one source's view is adopted by every sibling, and a
///      checkpoint restore over a SHARED pool reconciles toward the pool
///      instead of republishing its (possibly stale) image.
///   4. Source identity survives the edges — checkpoints carry their
///      owning source and refuse a mismatch (the double-billing guard),
///      and every source-stamped wire frame round-trips and rejects
///      truncation.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "core/checkpoint.hpp"
#include "core/config.hpp"
#include "core/instance_pool.hpp"
#include "core/multi_source.hpp"
#include "core/posg_scheduler.hpp"
#include "net/protocol.hpp"
#include "sim/simulator.hpp"
#include "sketch/dual_sketch.hpp"

namespace posg {
namespace {

/// FNV-1a over the instance sequence — the same hash golden_schedule_test
/// uses, so the constants are directly comparable.
std::uint64_t sequence_hash(const std::vector<common::InstanceId>& sequence) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const common::InstanceId instance : sequence) {
    h ^= static_cast<std::uint64_t>(instance);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// The golden workload of golden_schedule_test, driven through a
/// MultiSourceScheduler with S = 1 instead of a bare PosgScheduler. Every
/// input is identical; only the call surface differs (schedule(source, …)
/// and the FeedbackEvent variant instead of the legacy virtuals), so a
/// matching hash proves the multi-source wrapper is a true pass-through.
std::vector<common::InstanceId> run_golden_stream_via_views(std::size_t k, bool with_failure,
                                                            bool with_hints) {
  core::PosgConfig config;
  config.epsilon = 0.05;  // 54 columns — the paper's coarse sketch
  config.delta = 0.1;     // 4 rows

  core::MultiSourceConfig multi;  // S = 1, per_source_greedy
  core::MultiSourceScheduler scheduler(k, config, multi);
  const auto dims = config.dims();
  common::Xoshiro256StarStar rng(42);

  if (with_hints) {
    std::vector<common::TimeMs> hints(k);
    for (std::size_t op = 0; op < k; ++op) {
      hints[op] = static_cast<double>(op % 3) * 0.25;
    }
    scheduler.view(0).set_latency_hints(std::move(hints));
  }

  std::vector<common::InstanceId> sequence;
  common::SeqNo seq = 0;

  for (common::InstanceId op = 0; op < k; ++op) {
    sequence.push_back(scheduler.schedule(0, rng.next_below(256), seq++).instance);
    sketch::DualSketch sketch(dims, config.sketch_seed);
    for (int i = 0; i < 400; ++i) {
      const common::Item item = rng.next_below(256);
      sketch.update(item, 0.5 + static_cast<double>(item % 7));
    }
    scheduler.on_feedback(0, core::FeedbackEvent{core::SketchShipment{op, sketch}});
  }

  std::vector<std::pair<common::InstanceId, core::SyncRequest>> pending_markers;
  for (int step = 0; step < 2000; ++step) {
    const common::Item item = rng.next_below(256);
    const core::Decision decision = scheduler.schedule(0, item, seq++);
    sequence.push_back(decision.instance);
    if (decision.sync_request) {
      pending_markers.emplace_back(decision.instance, *decision.sync_request);
    }
    if (!pending_markers.empty() && step % 5 == 4) {
      const auto [op, marker] = pending_markers.front();
      pending_markers.erase(pending_markers.begin());
      const common::TimeMs delta = static_cast<double>(step % 3 - 1) * 0.125;
      scheduler.on_feedback(0, core::FeedbackEvent{core::SyncReply{op, marker.epoch, delta}});
    }
    if (with_failure && step == 700) {
      scheduler.mark_failed(0, k / 2);
    }
    if (step == 1000) {
      sketch::DualSketch sketch(dims, config.sketch_seed);
      for (int i = 0; i < 300; ++i) {
        const common::Item item2 = rng.next_below(256);
        sketch.update(item2, 1.0 + static_cast<double>(item2 % 5));
      }
      scheduler.on_feedback(0, core::FeedbackEvent{core::SketchShipment{0, sketch}});
    }
  }

  for (const auto& [op, marker] : pending_markers) {
    scheduler.on_feedback(0, core::FeedbackEvent{core::SyncReply{op, marker.epoch, 0.0}});
  }
  for (int step = 0; step < 200; ++step) {
    sequence.push_back(scheduler.schedule(0, rng.next_below(256), seq++).instance);
  }

  scheduler.view(0).debug_validate();
  return sequence;
}

// The constants of golden_schedule_test's kGoldenCases — regenerating them
// there regenerates them here.
TEST(MultiSourceGolden, SingleSourceViewIsByteIdenticalSmallK) {
  const auto plain = run_golden_stream_via_views(4, false, false);
  EXPECT_EQ(plain.size(), 2204u);
  EXPECT_EQ(sequence_hash(plain), 0x26D06FEF7EF37F4AULL);
  const auto hardened = run_golden_stream_via_views(4, true, true);
  EXPECT_EQ(hardened.size(), 2204u);
  EXPECT_EQ(sequence_hash(hardened), 0x8F1CCCFB9AA88D53ULL);
}

TEST(MultiSourceGolden, SingleSourceViewIsByteIdenticalLargeK) {
  const auto plain = run_golden_stream_via_views(50, false, false);
  EXPECT_EQ(plain.size(), 2250u);
  EXPECT_EQ(sequence_hash(plain), 0x460BFE6B24A20D73ULL);
  const auto hardened = run_golden_stream_via_views(50, true, true);
  EXPECT_EQ(hardened.size(), 2250u);
  EXPECT_EQ(sequence_hash(hardened), 0x3E17E4435E47AE8EULL);
}

/// The sim-level restatement of the same guarantee: run() with a bare
/// PosgScheduler and run_multi() with an S = 1 MultiSourceScheduler must
/// route the identical decision stream (same per-instance tuple counts,
/// same makespan).
TEST(MultiSourceSim, SingleSourceRunMultiMatchesClassicRun) {
  sim::Simulator::Config config;
  config.instances = 5;
  config.inter_arrival = 0.8;
  const auto cost = [](common::Item item, common::InstanceId, common::SeqNo) {
    return 1.0 + static_cast<double>(item % 7);
  };
  std::vector<common::Item> stream(4000);
  common::Xoshiro256StarStar rng(7);
  for (auto& item : stream) {
    item = rng.next_below(512);
  }

  core::PosgScheduler classic(config.instances, config.posg);
  const auto classic_result = sim::Simulator(config, cost).run(stream, classic);

  core::MultiSourceConfig multi;  // S = 1
  core::MultiSourceScheduler views(config.instances, config.posg, multi);
  const auto multi_result = sim::Simulator(config, cost).run_multi(stream, views);

  EXPECT_EQ(multi_result.instance_tuples, classic_result.instance_tuples);
  EXPECT_DOUBLE_EQ(multi_result.makespan, classic_result.makespan);
  ASSERT_EQ(multi_result.source_routed.size(), 1u);
  EXPECT_EQ(multi_result.source_routed[0], stream.size());
}

/// Conservation over the shared pool with S = 4: every tuple is routed by
/// exactly one view and executed by exactly one instance, and the
/// per-(source, instance) cells tie both margins together.
TEST(MultiSourceSim, FourSourceConservation) {
  for (const auto reconcile :
       {core::ReconcileMode::kPerSourceGreedy, core::ReconcileMode::kGossipMerge}) {
    sim::Simulator::Config config;
    config.instances = 6;
    config.inter_arrival = 0.5;
    core::MultiSourceConfig multi;
    multi.sources = 4;
    multi.reconcile = reconcile;
    multi.gossip_every_decisions = 128;
    core::MultiSourceScheduler scheduler(config.instances, config.posg, multi);

    std::vector<common::Item> stream(8000);
    common::Xoshiro256StarStar rng(11);
    for (auto& item : stream) {
      item = rng.next_below(1024);
    }
    const auto cost = [](common::Item item, common::InstanceId, common::SeqNo) {
      return 1.0 + static_cast<double>(item % 5);
    };
    const auto result = sim::Simulator(config, cost).run_multi(stream, scheduler);

    std::uint64_t routed_total = 0;
    ASSERT_EQ(result.source_routed.size(), 4u);
    for (std::size_t s = 0; s < 4; ++s) {
      // Round-robin assignment: each source owns every 4th tuple.
      EXPECT_EQ(result.source_routed[s], stream.size() / 4);
      routed_total += result.source_routed[s];
      std::uint64_t row = 0;
      for (common::InstanceId op = 0; op < config.instances; ++op) {
        row += result.per_source_instance_tuples[s][op];
      }
      EXPECT_EQ(row, result.source_routed[s]) << "source " << s << " billed != routed";
    }
    std::uint64_t executed_total = 0;
    for (common::InstanceId op = 0; op < config.instances; ++op) {
      std::uint64_t column = 0;
      for (std::size_t s = 0; s < 4; ++s) {
        column += result.per_source_instance_tuples[s][op];
      }
      EXPECT_EQ(column, result.instance_tuples[op]) << "instance " << op;
      executed_total += result.instance_tuples[op];
    }
    EXPECT_EQ(routed_total, stream.size());
    EXPECT_EQ(executed_total, stream.size());
    EXPECT_EQ(result.completions.size(), stream.size());
    if (reconcile == core::ReconcileMode::kGossipMerge) {
      EXPECT_GT(scheduler.gossip_rounds(), 0u);
    } else {
      EXPECT_EQ(scheduler.gossip_rounds(), 0u);
    }
  }
}

/// A membership transition initiated through ONE view is pool state: every
/// sibling adopts it on its next decision and stops routing there; a
/// rejoin through a *different* sibling restores the instance everywhere.
TEST(MultiSourcePool, QuarantineAndRejoinPropagateAcrossViews) {
  const std::size_t k = 4;
  core::PosgConfig config;
  core::MultiSourceConfig multi;
  multi.sources = 3;
  core::MultiSourceScheduler scheduler(k, config, multi);

  common::SeqNo seq = 0;
  // Warm every view past ROUND_ROBIN so decisions are greedy.
  const auto dims = config.dims();
  for (std::size_t s = 0; s < 3; ++s) {
    for (common::InstanceId op = 0; op < k; ++op) {
      scheduler.schedule(static_cast<common::SourceId>(s), op, seq++);
      sketch::DualSketch sketch(dims, config.sketch_seed);
      sketch.update(op, 1.0);
      scheduler.on_feedback(static_cast<common::SourceId>(s),
                            core::FeedbackEvent{core::SketchShipment{op, sketch}});
    }
  }

  const common::InstanceId victim = 2;
  scheduler.mark_failed(/*source=*/0, victim);
  EXPECT_EQ(scheduler.pool()->lifecycle(victim),
            core::InstancePool::Lifecycle::kQuarantined);

  // No sibling ever routes to the quarantined instance again.
  for (int step = 0; step < 300; ++step) {
    for (std::size_t s = 0; s < 3; ++s) {
      const auto decision =
          scheduler.schedule(static_cast<common::SourceId>(s), step % 97, seq++);
      EXPECT_NE(decision.instance, victim) << "view " << s << " routed to a quarantined peer";
    }
  }
  for (std::size_t s = 0; s < 3; ++s) {
    EXPECT_EQ(scheduler.view(static_cast<common::SourceId>(s)).pool_lag(), 0u);
  }

  // Rejoin through a different sibling: pool state flips back, every view
  // eventually routes there again (the rejoin ramp paces, not blocks).
  scheduler.rejoin(/*source=*/1, victim);
  EXPECT_EQ(scheduler.pool()->lifecycle(victim), core::InstancePool::Lifecycle::kServing);
  std::vector<bool> routed_again(3, false);
  for (int step = 0; step < 5000; ++step) {
    for (std::size_t s = 0; s < 3; ++s) {
      if (scheduler.schedule(static_cast<common::SourceId>(s), step % 97, seq++).instance ==
          victim) {
        routed_again[s] = true;
      }
    }
  }
  EXPECT_TRUE(routed_again[0] && routed_again[1] && routed_again[2]);
}

/// Builds a view over `pool` for source `source`, routes `tuples` tuples
/// into it, and returns it — shared-pool construction (private_pool =
/// false), the S > 1 deployment shape.
std::unique_ptr<core::PosgScheduler> make_view(std::shared_ptr<core::InstancePool> pool,
                                               common::SourceId source, int tuples,
                                               common::SeqNo& seq) {
  core::PosgConfig config;
  auto view = std::make_unique<core::PosgScheduler>(std::move(pool), config, source,
                                                    /*private_pool=*/false);
  for (int i = 0; i < tuples; ++i) {
    view->schedule(static_cast<common::Item>(i % 64), seq++);
  }
  return view;
}

/// The checkpoint image carries its owning source, restores into a same-
/// source replacement, and refuses any other source — the double-billing
/// guard: source 2's Ĉ billed source 2's routed tuples only.
TEST(MultiSourceCheckpoint, ImageCarriesSourceAndRejectsMismatch) {
  auto pool = std::make_shared<core::InstancePool>(4);
  common::SeqNo seq = 0;
  auto view = make_view(pool, /*source=*/2, 500, seq);

  const core::CheckpointState state = view->checkpoint_state();
  EXPECT_EQ(state.source_id, 2u);

  // Byte round-trip through the codec preserves the source.
  const auto image = core::encode(state);
  const core::CheckpointState decoded = core::decode(image);
  EXPECT_EQ(decoded.source_id, 2u);

  // Same source: restore succeeds and the replacement picks up the Ĉ view.
  core::PosgConfig config;
  core::PosgScheduler replacement(pool, config, /*source=*/2, /*private_pool=*/false);
  replacement.restore(decoded);
  EXPECT_EQ(replacement.estimated_loads(), state.c_est);
  EXPECT_EQ(replacement.decisions(), state.decisions);

  // Different source: rejected without mutating the cold start.
  core::PosgScheduler wrong_source(pool, config, /*source=*/3, /*private_pool=*/false);
  const auto cold_decisions = wrong_source.decisions();
  EXPECT_THROW(wrong_source.restore(decoded), std::invalid_argument);
  EXPECT_EQ(wrong_source.decisions(), cold_decisions);
}

/// Restoring over a SHARED pool must treat the pool as the membership
/// authority: the image's flags are reconciled toward the pool's current
/// state, never republished into it — a sibling's quarantine that landed
/// while this source was down must survive its restart.
TEST(MultiSourceCheckpoint, SharedPoolRestoreAdoptsPoolNotImage) {
  auto pool = std::make_shared<core::InstancePool>(4);
  common::SeqNo seq = 0;
  auto view = make_view(pool, /*source=*/1, 300, seq);
  const auto image = view->checkpoint_state();  // all 4 instances serving
  view.reset();                                 // the source dies

  // While source 1 is down, a sibling quarantines instance 3.
  core::PosgConfig config;
  core::PosgScheduler sibling(pool, config, /*source=*/0, /*private_pool=*/false);
  sibling.mark_failed(3);
  const auto pool_version = pool->version();

  // The restarted source restores its pre-quarantine image: the pool's
  // newer truth wins, and no membership events are republished.
  core::PosgScheduler restarted(pool, config, /*source=*/1, /*private_pool=*/false);
  restarted.restore(image);
  EXPECT_EQ(pool->version(), pool_version) << "shared-pool restore republished membership";
  EXPECT_EQ(pool->lifecycle(3), core::InstancePool::Lifecycle::kQuarantined);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NE(restarted.schedule(i % 64, seq++).instance, 3u);
  }
}

/// Source-stamped wire frames: every frame that now carries a SourceId
/// round-trips it exactly, and every strict prefix of the encoding is
/// rejected (the fuzz half — a truncated source field must never decode
/// as a valid source-0 frame).
TEST(MultiSourceProtocol, SourceStampedFramesRoundTripAndRejectTruncation) {
  core::PosgConfig config;
  sketch::DualSketch sketch(config.dims(), config.sketch_seed);
  sketch.update(17, 2.5);
  core::SketchShipment shipment{1, sketch};
  shipment.source = 2;
  core::SyncReply reply{3, 9, -0.25};
  reply.source = 1;

  const std::vector<net::Message> frames = {
      net::Hello{7, 3},
      net::SchedulerHello{2, 41, 1},
      shipment,
      reply,
  };
  for (const auto& frame : frames) {
    const auto bytes = net::encode(frame);
    net::debug_validate_frame(bytes);
    const net::Message back = net::decode(bytes);
    ASSERT_EQ(back.index(), frame.index());
    if (const auto* hello = std::get_if<net::Hello>(&back)) {
      EXPECT_EQ(hello->instance, 7u);
      EXPECT_EQ(hello->source, 3u);
    }
    if (const auto* reattach = std::get_if<net::SchedulerHello>(&back)) {
      EXPECT_EQ(reattach->instance, 2u);
      EXPECT_EQ(reattach->recovery_epoch, 41u);
      EXPECT_EQ(reattach->source, 1u);
    }
    if (const auto* shipped = std::get_if<core::SketchShipment>(&back)) {
      EXPECT_EQ(shipped->instance, 1u);
      EXPECT_EQ(shipped->source, 2u);
    }
    if (const auto* replied = std::get_if<core::SyncReply>(&back)) {
      EXPECT_EQ(replied->instance, 3u);
      EXPECT_EQ(replied->epoch, 9u);
      EXPECT_EQ(replied->source, 1u);
    }
    // Truncation fuzz: no strict prefix may decode.
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      EXPECT_THROW(net::decode(std::span(bytes.data(), cut)), std::invalid_argument)
          << "prefix of " << cut << " bytes decoded";
    }
  }
}

}  // namespace
}  // namespace posg
