// Executable checks of the paper's analytical results (Sec. IV).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/prng.hpp"
#include "sketch/analysis.hpp"

namespace {

using namespace posg;
using sketch::expected_ratio_uniform_frequencies;
using sketch::markov_min_rows_bound;

/// The paper's numerical application setup (Sec. IV-B): 55 buckets,
/// n = 4096 items whose execution times are 1..64, each value shared by
/// 64 items, uniform frequencies.
std::vector<common::TimeMs> paper_weights() {
  std::vector<common::TimeMs> weights;
  weights.reserve(4096);
  for (int value = 1; value <= 64; ++value) {
    for (int rep = 0; rep < 64; ++rep) {
      weights.push_back(static_cast<double>(value));
    }
  }
  return weights;
}

TEST(Theorem43, PaperNumericalApplicationRange) {
  // "we get for v = 1,...,64, E{Wv/Cv} in [32.08, 32.92]".
  const auto weights = paper_weights();
  double lo = 1e18;
  double hi = -1e18;
  for (std::size_t v = 0; v < weights.size(); v += 64) {  // one item per distinct value
    const double e = expected_ratio_uniform_frequencies(weights, 55, v);
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_NEAR(lo, 32.08, 0.01);
  EXPECT_NEAR(hi, 32.92, 0.01);
}

TEST(Theorem43, ExpectationIsBoundedByWminWmax) {
  const auto weights = paper_weights();
  for (std::size_t v : {std::size_t{0}, std::size_t{100}, std::size_t{4095}}) {
    const double e = expected_ratio_uniform_frequencies(weights, 55, v);
    EXPECT_GE(e, 1.0);
    EXPECT_LE(e, 64.0);
  }
}

TEST(Theorem43, SingleBucketGivesGlobalMean) {
  // With one bucket every item collides with everything: the ratio is the
  // global mean regardless of v.
  const std::vector<common::TimeMs> weights{1.0, 2.0, 3.0, 10.0};
  const double mean = (1.0 + 2.0 + 3.0 + 10.0) / 4.0;
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_NEAR(expected_ratio_uniform_frequencies(weights, 1, v), mean, 1e-9);
  }
}

TEST(Theorem43, ManyBucketsApproachTrueWeight) {
  // With buckets >> n collisions vanish and E{Wv/Cv} -> wv.
  const std::vector<common::TimeMs> weights{1.0, 5.0, 9.0, 13.0};
  for (std::size_t v = 0; v < 4; ++v) {
    const double e = expected_ratio_uniform_frequencies(weights, 1'000'000, v);
    EXPECT_NEAR(e, weights[v], 0.01);
  }
}

TEST(Theorem43, MatchesMonteCarloUnderIdealHashing) {
  // Directly simulate the analysis's model: items hashed uniformly at
  // random, all frequencies equal; compare the empirical mean of W_v/C_v
  // with the closed form.
  const std::size_t n = 64;
  const std::size_t buckets = 8;
  std::vector<common::TimeMs> weights(n);
  common::Xoshiro256StarStar weight_rng(5);
  for (auto& w : weights) {
    w = 1.0 + static_cast<double>(weight_rng.next_below(16));
  }
  const std::size_t v = 3;

  common::Xoshiro256StarStar rng(99);
  const int trials = 200'000;
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t hv = rng.next_below(buckets);
    double c = 1.0;  // frequencies all equal: count items, weight by w
    double w = weights[v];
    for (std::size_t u = 0; u < n; ++u) {
      if (u == v) {
        continue;
      }
      if (rng.next_below(buckets) == hv) {
        c += 1.0;
        w += weights[u];
      }
    }
    sum += w / c;
  }
  const double empirical = sum / trials;
  const double analytic = expected_ratio_uniform_frequencies(weights, buckets, v);
  EXPECT_NEAR(empirical, analytic, 0.03);
}

TEST(MarkovBound, PaperNumericalApplication) {
  // With a = 3/4 (threshold 48) and r = 10 rows: (33/48)^10 <= 0.024.
  const double bound = markov_min_rows_bound(33.0, 48.0, 10);
  EXPECT_LE(bound, 0.024);
  EXPECT_NEAR(bound, std::pow(33.0 / 48.0, 10.0), 1e-12);
}

TEST(MarkovBound, ClampsAtOne) {
  EXPECT_DOUBLE_EQ(markov_min_rows_bound(100.0, 10.0, 3), 1.0);
}

TEST(MarkovBound, EmpiricalTailRespectsBound) {
  // Monte-Carlo the min-over-rows ratio in the paper's setup and check the
  // tail mass at 48 stays under the bound.
  const auto weights = paper_weights();
  const std::size_t buckets = 55;
  const std::size_t rows = 10;
  const std::size_t v = 63 * 64;  // an item with w_v = 64 (worst tail)
  common::Xoshiro256StarStar rng(7);
  const int trials = 300;
  int exceed = 0;
  for (int t = 0; t < trials; ++t) {
    double min_ratio = 1e18;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::uint64_t hv = rng.next_below(buckets);
      double c = 1.0;
      double w = weights[v];
      for (std::size_t u = 0; u < weights.size(); ++u) {
        if (u == v) {
          continue;
        }
        if (rng.next_below(buckets) == hv) {
          c += 1.0;
          w += weights[u];
        }
      }
      min_ratio = std::min(min_ratio, w / c);
    }
    exceed += min_ratio >= 48.0;
  }
  const double expectation = expected_ratio_uniform_frequencies(weights, buckets, v);
  const double bound = markov_min_rows_bound(expectation, 48.0, rows);
  EXPECT_LE(static_cast<double>(exceed) / trials, bound + 0.02);
}

TEST(Theorem43, RejectsBadArguments) {
  const std::vector<common::TimeMs> weights{1.0, 2.0};
  EXPECT_THROW(expected_ratio_uniform_frequencies({1.0}, 4, 0), std::invalid_argument);
  EXPECT_THROW(expected_ratio_uniform_frequencies(weights, 0, 0), std::invalid_argument);
  EXPECT_THROW(expected_ratio_uniform_frequencies(weights, 4, 2), std::invalid_argument);
  EXPECT_THROW(markov_min_rows_bound(1.0, 0.0, 1), std::invalid_argument);
  EXPECT_THROW(markov_min_rows_bound(1.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
