// Bit-identity of the hot-path fast forms against straightforward
// references:
//
//   - BucketDigest offsets vs a naive __int128 ((a*x + b) mod p) mod c
//     evaluation (pins the Granlund–Montgomery reciprocal reduction),
//   - digest-based CountMin update/update_conservative/update_masked/
//     estimate vs the item-based forms on an independently built twin
//     sketch (cells compared exactly),
//   - digest-based DualSketch update/estimate vs the item-based forms,
//   - digest portability across sketches sharing (seed, dims),
//   - GreedyIndex (incremental argmin) vs a brute-force scan, in both the
//     linear and the indexed-heap regime, including the lowest-id
//     tie-break.
//
// "Fast" that is not bit-identical is a behaviour change; every
// comparison here is EQ on integers/raw doubles, never NEAR.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/types.hpp"
#include "core/greedy_index.hpp"
#include "hash/two_universal.hpp"
#include "sketch/count_min.hpp"
#include "sketch/dual_sketch.hpp"

namespace posg {
namespace {

constexpr std::uint64_t kSeed = 0xC0FFEEULL;

// ------------------------------------------------------------- digests

TEST(BucketDigest, OffsetsMatchNaiveWideModulo) {
  for (const std::uint64_t codomain : {1ULL, 2ULL, 3ULL, 54ULL, 544ULL, 100003ULL}) {
    const hash::HashSet hashes(kSeed, 4, codomain);
    common::Xoshiro256StarStar rng(7);
    for (int i = 0; i < 2000; ++i) {
      // Items must lie in the supported universe [0, p): the Mersenne
      // folds are exact mod-p only there (and 2-universality is only
      // claimed there — see TwoUniversalHash).
      const common::Item x = rng.next_below(hash::TwoUniversalHash::kPrime);
      const auto digest = hashes.digest(x);
      ASSERT_EQ(digest.rows(), 4u);
      for (std::size_t row = 0; row < 4; ++row) {
        const auto& h = hashes.function(row);
        // Naive reference: full-width modular arithmetic, hardware `%`.
        __extension__ using NaiveWide = unsigned __int128;
        const auto wide = static_cast<NaiveWide>(h.a()) * x + h.b();
        const auto bucket = static_cast<std::uint64_t>(
            (wide % hash::TwoUniversalHash::kPrime) % codomain);
        ASSERT_EQ(digest.offset(row), row * codomain + bucket)
            << "codomain=" << codomain << " row=" << row << " x=" << x;
        ASSERT_EQ(hashes.bucket(row, x), bucket);
      }
    }
  }
}

TEST(BucketDigest, CompatibilityIsTheLayoutTriple) {
  const hash::HashSet hashes(kSeed, 4, 54);
  const auto digest = hashes.digest(123);
  EXPECT_TRUE(digest.compatible_with(kSeed, 4, 54));
  EXPECT_FALSE(digest.compatible_with(kSeed + 1, 4, 54));
  EXPECT_FALSE(digest.compatible_with(kSeed, 3, 54));
  EXPECT_FALSE(digest.compatible_with(kSeed, 4, 55));
}

TEST(BucketDigest, HashSetRejectsUndigestableRowCounts) {
  EXPECT_NO_THROW(hash::HashSet(kSeed, hash::BucketDigest::kMaxRows, 8));
  EXPECT_THROW(hash::HashSet(kSeed, hash::BucketDigest::kMaxRows + 1, 8),
               std::invalid_argument);
}

// ------------------------------------------------- CountMin equivalence

TEST(CountMinDigest, UpdateAndEstimateMatchItemForms) {
  const sketch::SketchDims dims{4, 54};
  sketch::FrequencySketch by_item(dims, kSeed);
  sketch::FrequencySketch by_digest(dims, kSeed);

  common::Xoshiro256StarStar rng(11);
  for (int i = 0; i < 5000; ++i) {
    const common::Item item = rng.next_below(512);
    by_item.update(item, 1);
    by_digest.update(by_digest.digest(item), 1);
  }
  ASSERT_EQ(by_item.raw_cells(), by_digest.raw_cells());

  common::Xoshiro256StarStar probe(13);
  for (int i = 0; i < 1000; ++i) {
    const common::Item item = probe.next_below(1024);
    ASSERT_EQ(by_item.estimate(item), by_digest.estimate(by_digest.digest(item)));
  }
}

TEST(CountMinDigest, ConservativeUpdateMatchesItemFormIncludingMask) {
  const sketch::SketchDims dims{4, 54};
  sketch::FrequencySketch by_item(dims, kSeed);
  sketch::FrequencySketch by_digest(dims, kSeed);
  sketch::WeightSketch w_item(dims, kSeed);
  sketch::WeightSketch w_digest(dims, kSeed);

  common::Xoshiro256StarStar rng(17);
  for (int i = 0; i < 5000; ++i) {
    const common::Item item = rng.next_below(128);  // dense: forces collisions
    const double weight = 0.25 * static_cast<double>(item % 9);
    const std::uint32_t mask_item = by_item.update_conservative(item, 1);
    const auto digest = by_digest.digest(item);
    const std::uint32_t mask_digest = by_digest.update_conservative(digest, 1);
    ASSERT_EQ(mask_item, mask_digest);
    w_item.update_masked(item, weight, mask_item);
    w_digest.update_masked(digest, weight, mask_digest);
  }
  ASSERT_EQ(by_item.raw_cells(), by_digest.raw_cells());
  ASSERT_EQ(w_item.raw_cells(), w_digest.raw_cells());
}

TEST(CountMinDigest, DigestFromTwinSketchIsInterchangeable) {
  // The protocol guarantees scheduler and instances share (seed, dims);
  // a digest computed against any of them must index all of them.
  const sketch::SketchDims dims{4, 54};
  sketch::FrequencySketch a(dims, kSeed);
  sketch::FrequencySketch b(dims, kSeed);
  for (common::Item item = 0; item < 300; ++item) {
    a.update(a.digest(item), 2);
    b.update(a.digest(item), 2);  // digest minted by the *other* sketch
  }
  ASSERT_EQ(a.raw_cells(), b.raw_cells());
}

// ----------------------------------------------- DualSketch equivalence

TEST(DualSketchDigest, UpdateAndEstimateMatchItemForms) {
  for (const bool conservative : {false, true}) {
    for (const std::size_t heavy : {std::size_t{0}, std::size_t{8}}) {
      const sketch::SketchDims dims{4, 54};
      sketch::DualSketch by_item(dims, kSeed, heavy, conservative);
      sketch::DualSketch by_digest(dims, kSeed, heavy, conservative);

      common::Xoshiro256StarStar rng(23);
      for (int i = 0; i < 4000; ++i) {
        const common::Item item = rng.next_below(256);
        const double weight = 0.5 + static_cast<double>(item % 11);
        by_item.update(item, weight);
        by_digest.update(item, by_digest.digest(item), weight);
      }
      ASSERT_EQ(by_item.frequencies().raw_cells(), by_digest.frequencies().raw_cells());
      ASSERT_EQ(by_item.weights().raw_cells(), by_digest.weights().raw_cells());

      common::Xoshiro256StarStar probe(29);
      for (int i = 0; i < 500; ++i) {
        const common::Item item = probe.next_below(512);
        for (const auto variant : {sketch::EstimatorVariant::kArgMinFrequency,
                                   sketch::EstimatorVariant::kMinRatio}) {
          const auto expected = by_item.estimate(item, variant);
          const auto actual = by_digest.estimate(item, by_digest.digest(item), variant);
          ASSERT_EQ(expected.has_value(), actual.has_value());
          if (expected) {
            ASSERT_EQ(*expected, *actual);  // exact: same reads, same order
          }
        }
      }
      by_item.debug_validate();
      by_digest.debug_validate();
    }
  }
}

// ----------------------------------------------------------- GreedyIndex

std::size_t brute_force_argmin(const std::vector<double>& scores,
                               const std::vector<bool>& alive) {
  std::size_t best = scores.size();
  for (std::size_t op = 0; op < scores.size(); ++op) {
    if (!alive[op]) {
      continue;
    }
    if (best == scores.size() || scores[op] < scores[best]) {
      best = op;
    }
  }
  return best;
}

void drive_greedy_index(std::size_t k, std::uint64_t seed) {
  std::vector<double> scores(k, 0.0);
  std::vector<bool> alive(k, true);
  core::GreedyIndex index;
  index.rebuild(scores, alive);
  index.debug_validate();

  common::Xoshiro256StarStar rng(seed);
  for (int step = 0; step < 20000; ++step) {
    ASSERT_EQ(index.best(), brute_force_argmin(scores, alive)) << "k=" << k;
    const auto action = rng.next_below(100);
    if (action < 90) {
      // Billing: raise an arbitrary live instance (SEND_ALL bills the
      // round-robin target, not the argmin).
      std::size_t op = rng.next_below(k);
      while (!alive[op]) {
        op = (op + 1) % k;
      }
      scores[op] += 0.25 * static_cast<double>(1 + rng.next_below(8));
      index.increase(op, scores[op]);
    } else if (action < 95) {
      // Epoch correction: globally perturb (including decreases).
      for (std::size_t op = 0; op < k; ++op) {
        scores[op] = static_cast<double>(rng.next_below(64)) * 0.5;
      }
      index.rebuild(scores, alive);
    } else {
      // Quarantine/revive churn, keeping at least one live instance.
      const std::size_t op = rng.next_below(k);
      std::size_t live = 0;
      for (std::size_t other = 0; other < k; ++other) {
        live += alive[other] ? 1u : 0u;
      }
      if (alive[op] && live <= 1) {
        continue;
      }
      alive[op] = !alive[op];
      index.rebuild(scores, alive);
    }
    if (step % 1000 == 0) {
      index.debug_validate();
    }
  }
  index.debug_validate();
}

TEST(GreedyIndex, MatchesBruteForceLinearRegime) {
  drive_greedy_index(4, 31);
  drive_greedy_index(core::GreedyIndex::kLinearThreshold, 37);
}

TEST(GreedyIndex, MatchesBruteForceHeapRegime) {
  drive_greedy_index(core::GreedyIndex::kLinearThreshold + 1, 41);
  drive_greedy_index(50, 43);
  drive_greedy_index(128, 47);
}

TEST(GreedyIndex, TiesBreakTowardLowestId) {
  for (const std::size_t k : {std::size_t{8}, std::size_t{64}}) {
    std::vector<double> scores(k, 1.5);  // all tied
    std::vector<bool> alive(k, true);
    core::GreedyIndex index;
    index.rebuild(scores, alive);
    EXPECT_EQ(index.best(), 0u);
    scores[0] = 2.0;
    index.increase(0, 2.0);
    EXPECT_EQ(index.best(), 1u);  // next-lowest id among the tied rest
    alive[1] = false;
    index.rebuild(scores, alive);
    EXPECT_EQ(index.best(), 2u);
    index.debug_validate();
  }
}

TEST(GreedyIndex, RebuildRejectsEmptyLiveSet) {
  core::GreedyIndex index;
  EXPECT_THROW(index.rebuild({1.0, 2.0}, {false, false}), std::invalid_argument);
  EXPECT_THROW(index.rebuild({1.0}, {false, false}), std::invalid_argument);
}

}  // namespace
}  // namespace posg
