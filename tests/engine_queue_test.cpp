// Tests for the engine's bounded blocking queue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/queue.hpp"

namespace {

using posg::engine::BoundedQueue;

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.push(i));
  }
  for (int i = 0; i < 5; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
}

TEST(BoundedQueue, SizeTracksContents) {
  BoundedQueue<int> queue(10);
  EXPECT_EQ(queue.size(), 0u);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto value = queue.pop();
    EXPECT_TRUE(value.has_value());
    EXPECT_EQ(*value, 7);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  queue.push(7);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedQueue, PushBlocksWhenFull) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // backpressure: producer waits
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd) {
  BoundedQueue<int> queue(10);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, CloseRejectsNewPushes) {
  BoundedQueue<int> queue(10);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::thread producer([&] { EXPECT_FALSE(queue.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
  BoundedQueue<int> queue(8);
  const int per_producer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < per_producer; ++i) {
        queue.push(p * per_producer + i);
      }
    });
  }
  std::vector<bool> seen(4 * per_producer, false);
  for (int i = 0; i < 4 * per_producer; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    ASSERT_FALSE(seen[*value]);
    seen[*value] = true;
  }
  for (auto& t : producers) {
    t.join();
  }
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

}  // namespace
