// Tests for the engine's bounded blocking queue.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/queue.hpp"

namespace {

using posg::engine::BoundedQueue;

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.push(i));
  }
  for (int i = 0; i < 5; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
}

TEST(BoundedQueue, SizeTracksContents) {
  BoundedQueue<int> queue(10);
  EXPECT_EQ(queue.size(), 0u);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.size(), 2u);
  queue.pop();
  EXPECT_EQ(queue.size(), 1u);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedQueue<int> queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    const auto value = queue.pop();
    EXPECT_TRUE(value.has_value());
    EXPECT_EQ(*value, 7);
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  queue.push(7);
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(BoundedQueue, PushBlocksWhenFull) {
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // backpressure: producer waits
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(BoundedQueue, CloseDrainsRemainingThenSignalsEnd) {
  BoundedQueue<int> queue(10);
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_EQ(queue.pop().value(), 1);
  EXPECT_EQ(queue.pop().value(), 2);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BoundedQueue, CloseRejectsNewPushes) {
  BoundedQueue<int> queue(10);
  queue.close();
  EXPECT_FALSE(queue.push(1));
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] { EXPECT_FALSE(queue.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  queue.push(1);
  std::thread producer([&] { EXPECT_FALSE(queue.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
}

TEST(BoundedQueue, ManyProducersOneConsumer) {
  BoundedQueue<int> queue(8);
  const int per_producer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < per_producer; ++i) {
        queue.push(p * per_producer + i);
      }
    });
  }
  std::vector<bool> seen(4 * per_producer, false);
  for (int i = 0; i < 4 * per_producer; ++i) {
    const auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    ASSERT_FALSE(seen[*value]);
    seen[*value] = true;
  }
  for (auto& t : producers) {
    t.join();
  }
}

TEST(BoundedQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedQueue<int>(0), std::invalid_argument);
}

// ------------------------------------------------------ batched APIs

TEST(BoundedQueue, PushAllPreservesFifoAndClearsInput) {
  BoundedQueue<int> queue(10);
  std::vector<int> batch{1, 2, 3, 4};
  EXPECT_EQ(queue.push_all(batch), 4u);
  EXPECT_TRUE(batch.empty());
  for (int i = 1; i <= 4; ++i) {
    EXPECT_EQ(queue.pop().value(), i);
  }
  queue.debug_validate();
}

TEST(BoundedQueue, PopAllDrainsEverythingInOrder) {
  BoundedQueue<int> queue(10);
  for (int i = 0; i < 6; ++i) {
    queue.push(i);
  }
  std::vector<int> out{-1};  // pop_all appends, never overwrites
  EXPECT_EQ(queue.pop_all(out), 6u);
  EXPECT_EQ(out, (std::vector<int>{-1, 0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(queue.size(), 0u);
  queue.debug_validate();
}

TEST(BoundedQueue, PopAllSignalsEndOfStreamWithZero) {
  BoundedQueue<int> queue(4);
  queue.push(9);
  queue.close();
  std::vector<int> out;
  EXPECT_EQ(queue.pop_all(out), 1u);
  EXPECT_EQ(queue.pop_all(out), 0u);  // closed and drained
  EXPECT_EQ(out, std::vector<int>{9});
}

TEST(BoundedQueue, PushAllLargerThanCapacityStreamsThrough) {
  // A batch bigger than the queue must stream in chunks against a live
  // consumer rather than deadlock or overflow capacity.
  BoundedQueue<int> queue(3);
  std::vector<int> received;
  std::thread consumer([&] {
    std::vector<int> out;
    while (queue.pop_all(out) > 0) {
      queue.debug_validate();  // occupancy <= capacity mid-stream too
      received.insert(received.end(), out.begin(), out.end());
      out.clear();
    }
  });
  std::vector<int> batch(100);
  for (int i = 0; i < 100; ++i) {
    batch[i] = i;
  }
  EXPECT_EQ(queue.push_all(batch), 100u);
  queue.close();
  consumer.join();
  ASSERT_EQ(received.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(received[i], i);
  }
  queue.debug_validate();
  EXPECT_EQ(queue.pushed(), 100u);
  EXPECT_EQ(queue.popped(), 100u);
  EXPECT_EQ(queue.rejected(), 0u);
}

TEST(BoundedQueue, PushAllOnClosedQueueRejectsWholeBatch) {
  BoundedQueue<int> queue(10);
  queue.close();
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(queue.push_all(batch), 0u);
  EXPECT_EQ(queue.rejected(), 3u);
  queue.debug_validate();
}

TEST(BoundedQueue, CloseMidBatchRejectsExactlyTheSuffix) {
  // Producer stages a batch far larger than capacity with no consumer;
  // close() must reject exactly the not-yet-admitted suffix and the
  // accounting must balance (debug_validate's conservation invariant).
  BoundedQueue<int> queue(2);
  std::atomic<std::size_t> accepted{0};
  std::thread producer([&] {
    std::vector<int> batch(50, 7);
    accepted = queue.push_all(batch);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  producer.join();
  EXPECT_EQ(accepted.load(), 2u);  // capacity admitted, the rest refused
  EXPECT_EQ(queue.pushed(), 2u);
  EXPECT_EQ(queue.rejected(), 48u);
  queue.debug_validate();
  std::vector<int> out;
  EXPECT_EQ(queue.pop_all(out), 2u);
  EXPECT_EQ(queue.pop_all(out), 0u);
  queue.debug_validate();
}

TEST(BoundedQueue, BatchedConservationUnderConcurrentProducers) {
  // Mixed per-tuple and batched producers against a batched consumer:
  // every element pushed is popped exactly once, and debug_validate's
  // conservation counters hold at interleaved validation points.
  BoundedQueue<int> queue(16);
  const int per_producer = 400;
  const int producers_n = 4;
  std::vector<std::thread> producers;
  for (int p = 0; p < producers_n; ++p) {
    producers.emplace_back([&queue, p] {
      if (p % 2 == 0) {
        std::vector<int> batch;
        for (int i = 0; i < per_producer; ++i) {
          batch.push_back(p * per_producer + i);
          if (batch.size() == 7 || i + 1 == per_producer) {
            queue.push_all(batch);
          }
        }
      } else {
        for (int i = 0; i < per_producer; ++i) {
          queue.push(p * per_producer + i);
        }
      }
    });
  }
  std::vector<bool> seen(producers_n * per_producer, false);
  std::size_t total = 0;
  std::vector<int> out;
  while (total < seen.size()) {
    const std::size_t delivered = queue.pop_all(out);
    ASSERT_GT(delivered, 0u);
    total += delivered;
    for (int value : out) {
      ASSERT_FALSE(seen[static_cast<std::size_t>(value)]);
      seen[static_cast<std::size_t>(value)] = true;
    }
    out.clear();
    queue.debug_validate();
  }
  for (auto& t : producers) {
    t.join();
  }
  queue.debug_validate();
  EXPECT_EQ(queue.pushed(), static_cast<std::uint64_t>(producers_n * per_producer));
  EXPECT_EQ(queue.popped(), queue.pushed());
  EXPECT_EQ(queue.rejected(), 0u);
}

// A payload that counts copies but moves silently: the batched hand-off
// path (push_all -> internal ring -> pop_all) must be move-only end to
// end, or heavy tuple Values would be duplicated once per hop.
struct CopyProbe {
  int value = 0;
  static std::atomic<int> copies;

  CopyProbe() = default;
  explicit CopyProbe(int v) : value(v) {}
  CopyProbe(const CopyProbe& other) : value(other.value) { copies.fetch_add(1); }
  CopyProbe& operator=(const CopyProbe& other) {
    value = other.value;
    copies.fetch_add(1);
    return *this;
  }
  CopyProbe(CopyProbe&&) noexcept = default;
  CopyProbe& operator=(CopyProbe&&) noexcept = default;
};

std::atomic<int> CopyProbe::copies{0};

TEST(BoundedQueue, BatchedPathNeverCopiesPayloads) {
  BoundedQueue<CopyProbe> queue(64);
  CopyProbe::copies = 0;
  std::vector<CopyProbe> batch;
  for (int i = 0; i < 32; ++i) {
    batch.emplace_back(i);
  }
  EXPECT_EQ(queue.push_all(batch), 32u);
  std::vector<CopyProbe> out;
  EXPECT_EQ(queue.pop_all(out), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].value, i);
  }
  EXPECT_EQ(CopyProbe::copies.load(), 0);
}

TEST(BoundedQueue, TryPushAllNeverCopiesPayloads) {
  BoundedQueue<CopyProbe> queue(4);
  CopyProbe::copies = 0;
  std::vector<CopyProbe> batch;
  for (int i = 0; i < 10; ++i) {
    batch.emplace_back(i);
  }
  EXPECT_EQ(queue.try_push_all(batch), 4u);  // admitted prefix moved out
  EXPECT_EQ(batch.size(), 6u);               // suffix compacted by move
  std::vector<CopyProbe> out;
  EXPECT_EQ(queue.pop_all(out), 4u);
  EXPECT_EQ(CopyProbe::copies.load(), 0);
}

}  // namespace
