// Unit + property tests for the workload substrate: item distributions,
// execution-time models, stream generation, and the tweet synthesizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/prng.hpp"
#include "workload/distributions.hpp"
#include "workload/exec_time.hpp"
#include "workload/stream.hpp"
#include "workload/tweets.hpp"

namespace {

using namespace posg;
using namespace posg::workload;

TEST(AliasTable, ProbabilitiesAreNormalized) {
  AliasTable table({1.0, 2.0, 3.0, 4.0});
  double total = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    total += table.probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(table.probability(3), 0.4, 1e-12);
}

TEST(AliasTable, SamplesMatchWeights) {
  AliasTable table({1.0, 0.0, 3.0});
  common::Xoshiro256StarStar rng(5);
  std::vector<int> counts(3, 0);
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    ++counts[table.sample(rng)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.75, 0.01);
}

TEST(AliasTable, RejectsDegenerateInput) {
  EXPECT_THROW(AliasTable({}), std::invalid_argument);
  EXPECT_THROW(AliasTable({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable({1.0, -1.0}), std::invalid_argument);
}

TEST(UniformItems, HasFlatPmf) {
  UniformItems dist(100);
  EXPECT_DOUBLE_EQ(dist.probability(0), 0.01);
  EXPECT_DOUBLE_EQ(dist.probability(99), 0.01);
  EXPECT_DOUBLE_EQ(dist.probability(100), 0.0);
  EXPECT_EQ(dist.universe(), 100u);
  EXPECT_EQ(dist.name(), "uniform");
}

TEST(ZipfItems, PmfIsMonotoneAndNormalized) {
  ZipfItems dist(1000, 1.0);
  double total = 0.0;
  for (common::Item i = 0; i < 1000; ++i) {
    total += dist.probability(i);
    if (i > 0) {
      EXPECT_LE(dist.probability(i), dist.probability(i - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfItems, AlphaZeroIsUniform) {
  ZipfItems dist(10, 0.0);
  for (common::Item i = 0; i < 10; ++i) {
    EXPECT_NEAR(dist.probability(i), 0.1, 1e-12);
  }
}

TEST(ZipfItems, RatioFollowsPowerLaw) {
  ZipfItems dist(100, 2.0);
  EXPECT_NEAR(dist.probability(0) / dist.probability(1), 4.0, 1e-9);  // (2/1)^2
  EXPECT_NEAR(dist.probability(1) / dist.probability(3), 4.0, 1e-9);  // (4/2)^2
}

/// Empirical frequencies of sampled streams follow the pmf (parameterized
/// over distribution tags — the paper's Fig. 4 x-axis).
class DistributionSampling : public ::testing::TestWithParam<const char*> {};

TEST_P(DistributionSampling, EmpiricalMatchesAnalytic) {
  const std::size_t n = 128;
  const auto dist = make_distribution(GetParam(), n);
  const auto stream = StreamGenerator::generate(*dist, 100'000, 99);
  const auto freq = item_frequencies(stream, n);
  // Check the head items (rare tail items have too few samples).
  for (common::Item i = 0; i < 5; ++i) {
    const double expected = dist->probability(i) * 100'000;
    if (expected > 100) {
      EXPECT_NEAR(static_cast<double>(freq[i]), expected, 5 * std::sqrt(expected) + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Tags, DistributionSampling,
                         ::testing::Values("uniform", "zipf-0.5", "zipf-1.0", "zipf-2.0",
                                           "zipf-3.0"));

TEST(MakeDistribution, RejectsUnknownTag) {
  EXPECT_THROW(make_distribution("pareto-1", 10), std::invalid_argument);
}

TEST(ExecutionTimeAssignment, LinearValuesMatchPaperDefaults) {
  // wn = 64 values at constant distance in [1, 64] -> {1, 2, ..., 64}.
  ExecutionTimeAssignment assignment(4096, 64, 1.0, 64.0, ValueSpacing::kLinear, 7);
  ASSERT_EQ(assignment.values().size(), 64u);
  for (std::size_t j = 0; j < 64; ++j) {
    EXPECT_NEAR(assignment.values()[j], 1.0 + static_cast<double>(j), 1e-9);
  }
}

TEST(ExecutionTimeAssignment, GeometricValuesAreMultiplicative) {
  ExecutionTimeAssignment assignment(64, 4, 1.0, 8.0, ValueSpacing::kGeometric, 7);
  const auto& v = assignment.values();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[1] / v[0], 2.0, 1e-9);
  EXPECT_NEAR(v[2] / v[1], 2.0, 1e-9);
  EXPECT_NEAR(v[3] / v[2], 2.0, 1e-9);
}

TEST(ExecutionTimeAssignment, EachValueGetsEqualShareOfItems) {
  const std::size_t n = 4096;
  const std::size_t wn = 64;
  ExecutionTimeAssignment assignment(n, wn, 1.0, 64.0, ValueSpacing::kLinear, 13);
  std::vector<int> counts(wn, 0);
  for (common::Item item = 0; item < n; ++item) {
    const double value = assignment.base_time(item);
    const auto index = static_cast<std::size_t>(std::lround(value - 1.0));
    ASSERT_LT(index, wn);
    ++counts[index];
  }
  for (std::size_t j = 0; j < wn; ++j) {
    EXPECT_EQ(counts[j], static_cast<int>(n / wn));
  }
}

TEST(ExecutionTimeAssignment, DifferentSeedsShuffleDifferently) {
  ExecutionTimeAssignment a(256, 16, 1.0, 16.0, ValueSpacing::kLinear, 1);
  ExecutionTimeAssignment b(256, 16, 1.0, 16.0, ValueSpacing::kLinear, 2);
  int same = 0;
  for (common::Item item = 0; item < 256; ++item) {
    same += a.base_time(item) == b.base_time(item);
  }
  EXPECT_LT(same, 64);  // expected ~16 under independence
}

TEST(ExecutionTimeAssignment, MeanUnderUniformIsValueMean) {
  ExecutionTimeAssignment assignment(64, 4, 1.0, 4.0, ValueSpacing::kLinear, 3);
  UniformItems uniform(64);
  EXPECT_NEAR(assignment.mean_under(uniform), 2.5, 1e-9);
}

TEST(ExecutionTimeAssignment, SingleValueDegenerate) {
  ExecutionTimeAssignment assignment(16, 1, 5.0, 5.0, ValueSpacing::kLinear, 3);
  for (common::Item item = 0; item < 16; ++item) {
    EXPECT_DOUBLE_EQ(assignment.base_time(item), 5.0);
  }
}

TEST(ExecutionTimeAssignment, RejectsBadParameters) {
  EXPECT_THROW(ExecutionTimeAssignment(4, 8, 1.0, 2.0, ValueSpacing::kLinear, 1),
               std::invalid_argument);  // wn > n
  EXPECT_THROW(ExecutionTimeAssignment(8, 4, 0.0, 2.0, ValueSpacing::kLinear, 1),
               std::invalid_argument);  // wmin <= 0
  EXPECT_THROW(ExecutionTimeAssignment(8, 4, 3.0, 2.0, ValueSpacing::kLinear, 1),
               std::invalid_argument);  // wmax < wmin
}

TEST(InstanceLoadModel, UniformByDefault) {
  InstanceLoadModel model(5);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(model.multiplier(4, 1'000'000), 1.0);
}

TEST(InstanceLoadModel, PhasesSwitchAtBoundaries) {
  // The Fig. 10 scenario: multipliers change at tuple 75 000.
  InstanceLoadModel model(
      5, {{0, {1.05, 1.025, 1.0, 0.975, 0.95}}, {75'000, {0.90, 0.95, 1.0, 1.05, 1.10}}});
  EXPECT_DOUBLE_EQ(model.multiplier(0, 0), 1.05);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 74'999), 1.05);
  EXPECT_DOUBLE_EQ(model.multiplier(0, 75'000), 0.90);
  EXPECT_DOUBLE_EQ(model.multiplier(4, 75'000), 1.10);
}

TEST(InstanceLoadModel, ValidatesPhases) {
  EXPECT_THROW(InstanceLoadModel(2, {}), std::invalid_argument);
  EXPECT_THROW(InstanceLoadModel(2, {{5, {1.0, 1.0}}}), std::invalid_argument);  // first != 0
  EXPECT_THROW(InstanceLoadModel(2, {{0, {1.0}}}), std::invalid_argument);  // wrong width
  EXPECT_THROW(InstanceLoadModel(2, {{0, {1.0, 1.0}}, {0, {1.0, 1.0}}}),
               std::invalid_argument);  // not strictly ordered
}

TEST(ExecutionTimeModel, CombinesBaseAndMultiplier) {
  ExecutionTimeAssignment assignment(16, 1, 10.0, 10.0, ValueSpacing::kLinear, 3);
  InstanceLoadModel load(2, {{0, {1.0, 2.0}}});
  ExecutionTimeModel model(std::move(assignment), std::move(load));
  EXPECT_DOUBLE_EQ(model.execution_time(3, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(model.execution_time(3, 1, 0), 20.0);
}

TEST(StreamGenerator, SameSeedSameStream) {
  UniformItems dist(64);
  const auto a = StreamGenerator::generate(dist, 1000, 5);
  const auto b = StreamGenerator::generate(dist, 1000, 5);
  EXPECT_EQ(a, b);
  const auto c = StreamGenerator::generate(dist, 1000, 6);
  EXPECT_NE(a, c);
}

TEST(ItemFrequencies, CountsAndValidates) {
  const std::vector<common::Item> stream{0, 1, 1, 2, 2, 2};
  const auto freq = item_frequencies(stream, 4);
  EXPECT_EQ(freq, (std::vector<std::uint64_t>{1, 2, 3, 0}));
  EXPECT_THROW(item_frequencies({9}, 4), std::invalid_argument);
}

TEST(TweetDataset, CalibratesTopProbability) {
  // The paper's figure: most frequent entity ("Beppe Grillo") at 0.065
  // over ~35 000 entities.
  const double alpha = calibrate_zipf_alpha(35'000, 0.065);
  ZipfItems check(35'000, alpha);
  EXPECT_NEAR(check.probability(0), 0.065, 1e-4);
}

TEST(TweetDataset, MatchesConfiguredMarginals) {
  TweetDatasetConfig config;
  config.entities = 5000;
  config.stream_length = 50'000;
  TweetDataset dataset(config);
  EXPECT_EQ(dataset.stream().size(), 50'000u);
  EXPECT_NEAR(dataset.distribution().probability(0), 0.065, 1e-3);
  // Rank 0 pinned to the politician class.
  EXPECT_EQ(dataset.entity_class(0), EntityClass::kPolitician);
  EXPECT_DOUBLE_EQ(dataset.execution_time(0), config.politician_cost);
  // Class counts match fractions.
  std::size_t media = 0;
  std::size_t politicians = 0;
  for (common::Item e = 0; e < config.entities; ++e) {
    media += dataset.entity_class(e) == EntityClass::kMedia;
    politicians += dataset.entity_class(e) == EntityClass::kPolitician;
  }
  EXPECT_EQ(media, static_cast<std::size_t>(std::llround(config.media_fraction * 5000)));
  EXPECT_EQ(politicians, static_cast<std::size_t>(std::llround(config.politician_fraction * 5000)));
}

TEST(TweetDataset, ProminenceBiasFillsHeadRanks) {
  TweetDatasetConfig config;
  config.entities = 5000;
  config.stream_length = 10;
  config.prominence_bias = 1.0;
  TweetDataset dataset(config);
  // With bias 1.0 every media/politician entity sits in the head block.
  const auto head = static_cast<std::size_t>(
      std::llround((config.media_fraction + config.politician_fraction) * 5000));
  for (common::Item e = 0; e < head; ++e) {
    EXPECT_NE(dataset.entity_class(e), EntityClass::kOther) << "rank " << e;
  }
  for (common::Item e = head; e < 5000; ++e) {
    EXPECT_EQ(dataset.entity_class(e), EntityClass::kOther) << "rank " << e;
  }
}

TEST(TweetDataset, ZeroBiasScattersClasses) {
  TweetDatasetConfig config;
  config.entities = 5000;
  config.stream_length = 10;
  config.prominence_bias = 0.0;
  TweetDataset dataset(config);
  // The head block (beyond rank 0) should be mostly "other" now.
  std::size_t head_special = 0;
  for (common::Item e = 1; e < 350; ++e) {
    head_special += dataset.entity_class(e) != EntityClass::kOther;
  }
  EXPECT_LT(head_special, 80);  // ~7% expected under uniform scattering
}

TEST(TweetDataset, MeanExecutionTimeIsMassWeighted) {
  TweetDatasetConfig config;
  config.entities = 2000;
  config.stream_length = 10;
  TweetDataset dataset(config);
  double expected = 0.0;
  for (common::Item e = 0; e < config.entities; ++e) {
    expected += dataset.distribution().probability(e) * dataset.execution_time(e);
  }
  EXPECT_NEAR(dataset.mean_execution_time(), expected, 1e-9);
}

}  // namespace
