// Unit tests for the operator-instance side of POSG: the START/STABILIZING
// state machine, shipment conditions, and the synchronization replies.
#include <gtest/gtest.h>

#include "core/instance_tracker.hpp"

namespace {

using namespace posg;
using core::InstanceTracker;
using core::PosgConfig;
using core::SyncRequest;

PosgConfig small_config() {
  PosgConfig config;
  config.window = 4;
  config.mu = 0.05;
  config.max_windows_per_epoch = 0;  // strict paper behaviour by default here
  return config;
}

TEST(InstanceTracker, StartsInStartState) {
  InstanceTracker tracker(0, small_config());
  EXPECT_EQ(tracker.state(), InstanceTracker::State::kStart);
  EXPECT_EQ(tracker.executed_count(), 0u);
  EXPECT_DOUBLE_EQ(tracker.cumulated_execution_time(), 0.0);
}

TEST(InstanceTracker, FirstWindowCreatesSnapshotAndMovesToStabilizing) {
  InstanceTracker tracker(0, small_config());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(tracker.on_executed(1, 1.0).has_value());
    EXPECT_EQ(tracker.state(), InstanceTracker::State::kStart);
  }
  EXPECT_FALSE(tracker.on_executed(1, 1.0).has_value());  // 4th tuple: window full
  EXPECT_EQ(tracker.state(), InstanceTracker::State::kStabilizing);
}

TEST(InstanceTracker, ShipsWhenStableAndResets) {
  InstanceTracker tracker(3, small_config());
  // Constant load: the second window's ratios equal the first snapshot, so
  // the check at tuple 8 ships.
  std::optional<core::SketchShipment> shipment;
  for (int i = 0; i < 8; ++i) {
    shipment = tracker.on_executed(1, 2.0);
  }
  ASSERT_TRUE(shipment.has_value());
  EXPECT_EQ(shipment->instance, 3u);
  EXPECT_EQ(shipment->sketch.update_count(), 8u);
  EXPECT_DOUBLE_EQ(shipment->sketch.total_execution_time(), 16.0);
  // After shipping: reset, back to START; cumulated time is NOT reset.
  EXPECT_EQ(tracker.state(), InstanceTracker::State::kStart);
  EXPECT_DOUBLE_EQ(tracker.cumulated_execution_time(), 16.0);
  EXPECT_EQ(tracker.shipments(), 1u);
}

TEST(InstanceTracker, DoesNotShipWhileUnstable) {
  auto config = small_config();
  InstanceTracker tracker(0, config);
  // Window 1: item 1 at cost 1. Window 2: same item at cost 100 — the
  // cell ratio moves a lot, eta >> mu.
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tracker.on_executed(1, 1.0).has_value());
  }
  std::optional<core::SketchShipment> shipment;
  for (int i = 0; i < 4; ++i) {
    shipment = tracker.on_executed(1, 100.0);
  }
  EXPECT_FALSE(shipment.has_value());
  EXPECT_GT(tracker.last_relative_error(), config.mu);
  EXPECT_EQ(tracker.state(), InstanceTracker::State::kStabilizing);
  // Window 3 at the new ratio's neighbourhood: ratios stabilize (cumulated
  // mean moves less and less), eventually shipping.
}

TEST(InstanceTracker, ForceShipCapBoundsEpochLength) {
  auto config = small_config();
  config.max_windows_per_epoch = 3;
  InstanceTracker tracker(0, config);
  std::size_t shipped_at = 0;
  // Alternate wildly different costs per window so eta never settles.
  for (std::size_t i = 1; i <= 40; ++i) {
    const double cost = (i / 4) % 2 == 0 ? 1.0 : 100.0;
    if (tracker.on_executed(static_cast<common::Item>(i % 3), cost)) {
      shipped_at = i;
      break;
    }
  }
  // Cap of 3 windows of 4 tuples: shipment no later than tuple 12.
  ASSERT_NE(shipped_at, 0u);
  EXPECT_LE(shipped_at, 12u);
}

TEST(InstanceTracker, CumulatedTimeIsMonotoneAcrossEpochs) {
  InstanceTracker tracker(0, small_config());
  double total = 0.0;
  for (int i = 0; i < 40; ++i) {
    total += 2.0;
    tracker.on_executed(1, 2.0);
    EXPECT_DOUBLE_EQ(tracker.cumulated_execution_time(), total);
  }
  EXPECT_GE(tracker.shipments(), 2u);
}

TEST(InstanceTracker, SyncReplyReportsDriftAgainstCumulated) {
  InstanceTracker tracker(2, small_config());
  tracker.on_executed(1, 5.0);
  tracker.on_executed(1, 7.0);
  const SyncRequest request{4, 10.0};  // scheduler thought 10, truth is 12
  const auto reply = tracker.on_sync_request(request);
  EXPECT_EQ(reply.instance, 2u);
  EXPECT_EQ(reply.epoch, 4u);
  EXPECT_DOUBLE_EQ(reply.delta, 2.0);
}

TEST(InstanceTracker, NegativeDriftWhenOverestimated) {
  InstanceTracker tracker(0, small_config());
  tracker.on_executed(1, 1.0);
  const auto reply = tracker.on_sync_request(SyncRequest{1, 3.0});
  EXPECT_DOUBLE_EQ(reply.delta, -2.0);
}

TEST(InstanceTracker, RejectsNegativeExecutionTime) {
  InstanceTracker tracker(0, small_config());
  EXPECT_THROW(tracker.on_executed(1, -1.0), std::invalid_argument);
}

TEST(InstanceTracker, WindowOfOneStillNeedsTwoWindows) {
  auto config = small_config();
  config.window = 1;
  InstanceTracker tracker(0, config);
  EXPECT_FALSE(tracker.on_executed(1, 1.0).has_value());  // snapshot
  EXPECT_TRUE(tracker.on_executed(1, 1.0).has_value());   // stable, ship
}

TEST(InstanceTracker, ShipmentSketchLayoutMatchesConfig) {
  auto config = small_config();
  config.epsilon = 0.7;
  config.delta = 0.25;
  InstanceTracker tracker(0, config);
  std::optional<core::SketchShipment> shipment;
  for (int i = 0; i < 8 && !shipment; ++i) {
    shipment = tracker.on_executed(1, 1.0);
  }
  ASSERT_TRUE(shipment.has_value());
  EXPECT_EQ(shipment->sketch.dims().rows, 2u);
  EXPECT_EQ(shipment->sketch.dims().cols, 4u);
  EXPECT_EQ(shipment->sketch.seed(), config.sketch_seed);
}

}  // namespace
