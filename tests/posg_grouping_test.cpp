// Tests for the engine-side POSG grouping wrapper: thread safety and the
// optional control-path delay.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/instance_tracker.hpp"
#include "engine/posg_grouping.hpp"

namespace {

using namespace posg;
using engine::PosgGrouping;

core::PosgConfig small_config() {
  core::PosgConfig config;
  config.window = 8;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  return config;
}

core::SketchShipment make_shipment(common::InstanceId op, const core::PosgConfig& config) {
  core::InstanceTracker tracker(op, config);
  for (int i = 0; i < 1000; ++i) {
    if (auto shipment = tracker.on_executed(1, 2.0)) {
      return *shipment;
    }
  }
  throw std::logic_error("make_shipment: tracker never stabilized");
}

TEST(PosgGrouping, RoutesWithinRange) {
  const auto config = small_config();
  PosgGrouping grouping(3, config);
  engine::Tuple tuple;
  for (int i = 0; i < 30; ++i) {
    tuple.seq = i;
    tuple.item = i % 5;
    EXPECT_LT(grouping.route(tuple, 3).instance, 3u);
  }
  EXPECT_TRUE(grouping.wants_feedback());
  ASSERT_NE(grouping.feedback_config(), nullptr);
  EXPECT_EQ(grouping.feedback_config()->window, config.window);
  EXPECT_EQ(grouping.name(), "posg");
}

TEST(PosgGrouping, RejectsMismatchedInstanceCount) {
  PosgGrouping grouping(3, small_config());
  engine::Tuple tuple;
  EXPECT_THROW(grouping.route(tuple, 4), std::invalid_argument);
}

TEST(PosgGrouping, ImmediateDeliveryAdvancesProtocol) {
  const auto config = small_config();
  PosgGrouping grouping(2, config);
  grouping.on_sketches({0, make_shipment(0, config).sketch});
  grouping.on_sketches({1, make_shipment(1, config).sketch});
  EXPECT_EQ(grouping.scheduler_state(), core::PosgScheduler::State::kSendAll);
}

TEST(PosgGrouping, ControlDelayPostponesDelivery) {
  const auto config = small_config();
  PosgGrouping grouping(2, config, std::chrono::microseconds(60'000));
  grouping.on_sketches({0, make_shipment(0, config).sketch});
  grouping.on_sketches({1, make_shipment(1, config).sketch});
  // Delivery is delayed: still in ROUND_ROBIN right after the calls.
  EXPECT_EQ(grouping.scheduler_state(), core::PosgScheduler::State::kRoundRobin);
  // ...and applied once the delay elapses.
  const auto deadline = engine::Clock::now() + std::chrono::seconds(5);
  while (grouping.scheduler_state() == core::PosgScheduler::State::kRoundRobin &&
         engine::Clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(grouping.scheduler_state(), core::PosgScheduler::State::kSendAll);
}

TEST(PosgGrouping, DestructorFlushesPendingDeliveries) {
  const auto config = small_config();
  auto grouping =
      std::make_unique<PosgGrouping>(2, config, std::chrono::microseconds(200'000));
  grouping->on_sketches({0, make_shipment(0, config).sketch});
  // Destroying the grouping with a delivery still queued must not hang or
  // drop the message silently (it is flushed synchronously).
  EXPECT_NO_THROW(grouping.reset());
}

TEST(PosgGrouping, ConcurrentRouteAndFeedbackAreSafe) {
  const auto config = small_config();
  PosgGrouping grouping(3, config);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> routed{0};

  std::thread router([&] {
    engine::Tuple tuple;
    std::uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      tuple.seq = seq++;
      tuple.item = seq % 16;
      const auto route = grouping.route(tuple, 3);
      ASSERT_LT(route.instance, 3u);
      routed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread feeder([&] {
    for (int round = 0; round < 50; ++round) {
      for (common::InstanceId op = 0; op < 3; ++op) {
        grouping.on_sketches({op, make_shipment(op, config).sketch});
      }
      grouping.on_sync_reply({static_cast<common::InstanceId>(round % 3),
                              static_cast<common::Epoch>(round), 1.0});
    }
  });
  feeder.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  stop = true;
  router.join();
  EXPECT_GT(routed.load(), 100u);
  EXPECT_NE(grouping.scheduler_state(), core::PosgScheduler::State::kRoundRobin);
}

}  // namespace
