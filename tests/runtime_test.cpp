// In-process tests of the distributed runtime (src/runtime/): the same
// SchedulerRuntime / InstanceRuntime event loops the forked example runs,
// driven here over socket pairs with instance threads — including the
// failure drills: crash mid-epoch, silent lost reply (epoch deadline),
// corrupt feedback (quarantine), and registration validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <numeric>
#include <thread>

#include "net/fault_injection.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "runtime/instance_runtime.hpp"
#include "runtime/scheduler_runtime.hpp"

namespace {

using namespace posg;
using runtime::InstanceRuntime;
using runtime::InstanceRuntimeConfig;
using runtime::SchedulerRuntime;
using runtime::SchedulerRuntimeConfig;

SchedulerRuntimeConfig test_runtime_config(std::size_t k) {
  SchedulerRuntimeConfig config;
  config.instances = k;
  config.posg.window = 32;
  config.posg.mu = 0.5;
  config.posg.max_windows_per_epoch = 2;
  config.recv_deadline = std::chrono::milliseconds(20);
  config.epoch_deadline = std::chrono::milliseconds(2000);
  return config;
}

/// One in-process instance: a thread running the InstanceRuntime loop
/// over its half of a socket pair (optionally behind a FaultInjector).
struct TestInstance {
  InstanceRuntime::Stats stats;
  std::thread thread;

  void join() {
    if (thread.joinable()) {
      thread.join();
    }
  }
};

std::unique_ptr<TestInstance> spawn_instance(common::InstanceId op,
                                             const InstanceRuntimeConfig& config,
                                             net::Socket socket) {
  auto instance = std::make_unique<TestInstance>();
  instance->thread = std::thread(
      [op, config, &stats = instance->stats, socket = std::move(socket)]() mutable {
        net::SocketTransport link(std::move(socket));
        InstanceRuntime loop(op, config);
        stats = loop.run(link);
      });
  return instance;
}

/// Routes the stream with light pacing so the instances keep up. An
/// unpaced loop can push the entire stream through ROUND_ROBIN before the
/// first sketch shipment even arrives, which would skip the epochs the
/// failure drills rely on; a brief yield every few tuples models the
/// backpressure any real source has.
void route_stream(SchedulerRuntime& rt, common::SeqNo begin, common::SeqNo end) {
  for (common::SeqNo seq = begin; seq < end; ++seq) {
    rt.route((seq * 37) % 64, seq);
    if ((seq & 31) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
    if (rt.state() == core::PosgScheduler::State::kWaitAll) {
      // Replies arrive on the reader threads; give them wall-clock.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

/// Routes extra tuples until the scheduler settles in RUN *and stays
/// there once the instances' backlog has drained*: epochs only progress
/// through tuple traffic, and a shipment arriving from a still-draining
/// instance can reopen SEND_ALL right after RUN was observed — so reach
/// RUN, wait out the in-flight feedback, and re-flush if it reopened.
void flush_to_run(SchedulerRuntime& rt, common::SeqNo from) {
  common::SeqNo seq = from;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 2000 && rt.state() != core::PosgScheduler::State::kRun; ++i) {
      rt.route(seq % 64, seq);
      ++seq;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (rt.state() != core::PosgScheduler::State::kRun) {
      return;  // budget exhausted; the caller's state assertion reports it
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (rt.state() == core::PosgScheduler::State::kRun) {
      return;  // quiescent: no tuples in flight, no epoch reopened
    }
  }
}

TEST(SchedulerRuntime, FullProtocolCompletesInProcess) {
  const std::size_t k = 3;
  const common::SeqNo m = 6000;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  InstanceRuntimeConfig instance_config;
  instance_config.posg = config.posg;
  instance_config.cost_model = [](common::Item item) { return 1.0 + double(item % 8); };
  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, m);
  flush_to_run(rt, m);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  std::uint64_t executed = 0;
  for (const auto& instance : instances) {
    executed += instance->stats.executed;
    EXPECT_FALSE(instance->stats.crashed);
  }
  EXPECT_GE(executed, m);  // m stream tuples + the flush tail
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  EXPECT_EQ(rt.live_instances(), k);
  EXPECT_TRUE(rt.quarantined().empty());
  const auto routed = rt.routed_counts();
  EXPECT_GE(std::accumulate(routed.begin(), routed.end(), std::uint64_t{0}), m);
}

/// Acceptance drill: with k = 3, one instance dies mid-epoch — after the
/// scheduler sent its marker, before the SyncReply. The run must drain
/// the full stream on the 2 survivors with no hang and no crash, report
/// the quarantined instance, and finish in RUN with k' = 2.
TEST(SchedulerRuntime, KilledInstanceMidEpochIsQuarantinedAndRunDrains) {
  const std::size_t k = 3;
  const common::SeqNo m = 9000;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    if (op == 2) {
      instance_config.crash_on_marker_epoch = 1;  // die between marker and reply
    }
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, m);  // must never throw: survivors absorb the work
  flush_to_run(rt, m);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  EXPECT_TRUE(instances[2]->stats.crashed);
  EXPECT_EQ(rt.quarantined(), (std::vector<common::InstanceId>{2}));
  EXPECT_EQ(rt.live_instances(), 2u);
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  ASSERT_FALSE(rt.quarantine_log().empty());
  EXPECT_EQ(rt.quarantine_log().front().instance, 2u);
  // Delivery accounting (at-most-once): every tuple routed to a survivor
  // was executed; the only losses are tuples already queued at the dead
  // instance when it crashed. route() accepted the full stream (it never
  // threw above), so the survivors drained everything re-routable.
  const auto routed = rt.routed_counts();
  const std::uint64_t survivors = instances[0]->stats.executed + instances[1]->stats.executed;
  EXPECT_EQ(survivors, routed[0] + routed[1]);
  EXPECT_GE(routed[0] + routed[1] + routed[2], m);
  // Nothing was routed to instance 2 after its quarantine: its tuple
  // count stops near the crash point, far below an even share.
  EXPECT_LT(routed[2], m / k);
}

/// The WAIT_ALL liveness hole, silent variant: the instance stays alive
/// and keeps executing but goes feedback-mute (no replies, no shipments).
/// EOF never comes and no fresh shipment set can supersede the stalled
/// epoch — only the epoch deadline can unblock the scheduler.
TEST(SchedulerRuntime, EpochDeadlineQuarantinesSilentlyLostReply) {
  const std::size_t k = 3;
  const common::SeqNo m = 6000;
  auto config = test_runtime_config(k);
  config.epoch_deadline = std::chrono::milliseconds(600);
  SchedulerRuntime rt(config);

  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    if (op == 1) {
      instance_config.mute_from_epoch = 1;  // alive, but feedback-silent
    }
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, m);  // the kWaitAll pacing gives the deadline wall-clock
  flush_to_run(rt, m);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  // The mute instance must be quarantined by the deadline. A timeout
  // detector may legitimately also catch a healthy instance that a loaded
  // CI machine starved past the deadline, so assert containment, not
  // exact equality.
  const auto quarantined = rt.quarantined();
  EXPECT_TRUE(std::find(quarantined.begin(), quarantined.end(), 1u) != quarantined.end())
      << "mute instance not quarantined";
  EXPECT_EQ(rt.live_instances(), k - quarantined.size());
  EXPECT_GE(rt.live_instances(), 1u);
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  bool deadline_reason = false;
  for (const auto& event : rt.quarantine_log()) {
    deadline_reason |= event.instance == 1 &&
                       event.reason.find("epoch deadline") != std::string::npos;
  }
  EXPECT_TRUE(deadline_reason);
  EXPECT_FALSE(instances[1]->stats.crashed);  // it was healthy, just mute
}

/// A peer that starts speaking garbage on the feedback path is as gone as
/// a dead one: quarantine, don't fold corrupt bytes into Ĉ.
TEST(SchedulerRuntime, CorruptFeedbackFrameQuarantinesSender) {
  const std::size_t k = 3;
  const common::SeqNo m = 6000;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  InstanceRuntimeConfig instance_config;
  instance_config.posg = config.posg;
  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    auto [sched_end, inst_end] = net::socket_pair();
    if (op == 0) {
      // Scheduler-side recv frame #0 is instance 0's Hello; frame #1 is
      // its first feedback message — corrupt that one.
      net::FaultPlan plan;
      plan.corrupt(net::FaultDir::kRecv, 1, 3, 0xFF);
      rt.attach(op, std::make_unique<net::FaultInjector>(std::move(sched_end), plan));
    } else {
      rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    }
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, m);
  flush_to_run(rt, m);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  EXPECT_EQ(rt.quarantined(), (std::vector<common::InstanceId>{0}));
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  EXPECT_EQ(rt.live_instances(), 2u);
}

TEST(SchedulerRuntime, RegistrationValidatesHelloIds) {
  const std::size_t k = 2;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_runtime_reg_test.sock").string();
  net::Listener listener(path);
  std::thread registrar([&] { rt.accept_registrations(listener); });

  // Out-of-range id, duplicate id, and a non-Hello first frame must all
  // be rejected (closed), never indexed into the link table.
  auto rogue = net::connect(path);
  rogue.send_frame(net::encode(net::Hello{99}));
  auto real0 = net::connect(path);
  real0.send_frame(net::encode(net::Hello{0}));
  auto duplicate = net::connect(path);
  duplicate.send_frame(net::encode(net::Hello{0}));
  auto garbled = net::connect(path);
  garbled.send_frame(std::vector<std::byte>{std::byte{0x7F}, std::byte{0x01}});
  auto real1 = net::connect(path);
  real1.send_frame(net::encode(net::Hello{1}));
  registrar.join();

  // Rejected peers see their connection closed.
  EXPECT_FALSE(rogue.recv_frame().has_value());
  EXPECT_FALSE(duplicate.recv_frame().has_value());
  EXPECT_FALSE(garbled.recv_frame().has_value());
  // The accepted peers' links are live: start() succeeds with all k
  // attached (it would throw on a hole in the table).
  rt.start();
  // Orderly client exit: wait for EndOfStream, then close, so finish()
  // observes a clean EOF instead of burning its drain grace period.
  std::thread drainer([&] {
    real0.recv_frame();
    real0.close();
    real1.recv_frame();
    real1.close();
  });
  rt.finish();
  drainer.join();
  EXPECT_TRUE(rt.quarantined().empty());
}

TEST(SchedulerRuntime, RegistrationGivesUpAfterAttemptBudget) {
  auto config = test_runtime_config(1);
  config.max_registration_attempts = 2;
  SchedulerRuntime rt(config);
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_runtime_budget_test.sock").string();
  net::Listener listener(path);

  std::thread rogues([&path] {
    for (int i = 0; i < 2; ++i) {
      auto socket = net::connect(path);
      socket.send_frame(net::encode(net::Hello{5}));  // k = 1: out of range
      socket.recv_frame();                            // wait for the rejection (EOF)
    }
  });
  EXPECT_THROW(rt.accept_registrations(listener), std::runtime_error);
  rogues.join();
}

/// Rejoin end-to-end, in process: instance 2 crashes mid-run and is
/// quarantined; a fresh incarnation then registers over the rejoin
/// listener, receives the RejoinAck (tracker re-armed to the seeded C-hat),
/// ramps back through the token bucket, and finishes the stream as a full
/// member — the overload-resilience arc of the distributed runtime.
TEST(SchedulerRuntime, CrashedInstanceRejoinsAndRampsBackIn) {
  const std::size_t k = 3;
  auto config = test_runtime_config(k);
  config.allow_rejoin = true;
  config.posg.rejoin_ramp.ramp_tuples = 32;  // small ramp: completes in-run
  SchedulerRuntime rt(config);

  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    InstanceRuntimeConfig instance_config;
    instance_config.posg = config.posg;
    if (op == 2) {
      instance_config.crash_after_executed = 200;
    }
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_runtime_rejoin_test.sock").string();
  net::Listener listener(path);
  rt.enable_rejoin(listener);

  // Route until the crash is detected (the crash fires ~tuple 600; give
  // the EOF detector traffic and wall-clock).
  common::SeqNo seq = 0;
  for (int i = 0; i < 20000 && rt.quarantined().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(rt.quarantined(), (std::vector<common::InstanceId>{2}));
  ASSERT_EQ(rt.live_instances(), 2u);

  // A fresh incarnation of instance 2 dials the rejoin listener.
  InstanceRuntimeConfig rejoin_config;
  rejoin_config.posg = config.posg;
  auto replacement = std::make_unique<TestInstance>();
  replacement->thread = std::thread([&path, rejoin_config, &stats = replacement->stats] {
    net::SocketTransport link(net::connect(path));
    InstanceRuntime loop(2, rejoin_config);
    stats = loop.run(link);
  });

  // Keep traffic flowing until the rejoin lands, then a tail so the
  // admission ramp finishes and the rejoiner earns a real share.
  for (int i = 0; i < 20000 && rt.rejoin_log().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(rt.rejoin_log(), (std::vector<common::InstanceId>{2}));
  route_stream(rt, seq, seq + 4000);
  seq += 4000;
  flush_to_run(rt, seq);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }
  replacement->join();

  EXPECT_TRUE(instances[2]->stats.crashed);
  EXPECT_FALSE(replacement->stats.crashed);
  EXPECT_EQ(replacement->stats.rejoin_acks, 1u);
  EXPECT_EQ(replacement->stats.admission_grants, 1u);  // ramp completed
  EXPECT_GT(replacement->stats.executed, 0u);
  EXPECT_EQ(rt.live_instances(), k);
  EXPECT_TRUE(rt.quarantined().empty());
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  const auto resilience = rt.resilience();
  EXPECT_EQ(resilience.rejoins, 1u);
}

/// With rejoin enabled, even the *last* live instance dying is survivable:
/// route() fails with the typed error while the cluster is empty, and a
/// rejoiner brings it back.
TEST(SchedulerRuntime, LastInstanceDeathIsNonFatalWhenRejoinAllowed) {
  const std::size_t k = 1;
  auto config = test_runtime_config(k);
  config.allow_rejoin = true;
  SchedulerRuntime rt(config);

  InstanceRuntimeConfig instance_config;
  instance_config.posg = config.posg;
  instance_config.crash_after_executed = 50;
  auto [sched_end, inst_end] = net::socket_pair();
  rt.attach(0, std::make_unique<net::SocketTransport>(std::move(sched_end)));
  auto instance = spawn_instance(0, instance_config, std::move(inst_end));
  rt.start();
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_runtime_last_rejoin_test.sock").string();
  net::Listener listener(path);
  rt.enable_rejoin(listener);

  common::SeqNo seq = 0;
  bool saw_no_live = false;
  for (int i = 0; i < 20000 && !saw_no_live; ++i) {
    try {
      rt.route(seq % 64, seq);
      ++seq;
    } catch (const core::NoLiveInstanceError&) {
      saw_no_live = true;  // defined error path, not a crash or abort
    }
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_TRUE(saw_no_live);
  EXPECT_EQ(rt.live_instances(), 0u);
  instance->join();

  // A rejoiner revives the empty cluster; routing works again.
  InstanceRuntimeConfig rejoin_config;
  rejoin_config.posg = config.posg;
  auto replacement = std::make_unique<TestInstance>();
  replacement->thread = std::thread([&path, rejoin_config, &stats = replacement->stats] {
    net::SocketTransport link(net::connect(path));
    InstanceRuntime loop(0, rejoin_config);
    stats = loop.run(link);
  });
  for (int i = 0; i < 2000 && rt.rejoin_log().empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(rt.rejoin_log(), (std::vector<common::InstanceId>{0}));
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(rt.route(seq % 64, seq), 0u);
    ++seq;
  }
  rt.finish();
  replacement->join();
  EXPECT_EQ(replacement->stats.rejoin_acks, 1u);
  EXPECT_GE(replacement->stats.executed, 500u);
}

/// Lossless drain end-to-end, in process: mid-run, instance 1 receives a
/// DrainRequest, finishes every queued tuple (FIFO link — nothing follows
/// the request), reports its final Δ via DrainComplete, and is retired.
/// Conservation: every tuple routed to it was executed; its final bill is
/// cut + Δ, landed in Ĉ exactly once; the run finishes on the survivors
/// with no quarantine anywhere.
TEST(SchedulerRuntime, DrainRetiresInstanceLosslessly) {
  const std::size_t k = 3;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  InstanceRuntimeConfig instance_config;
  instance_config.posg = config.posg;
  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, 3000);
  ASSERT_TRUE(rt.request_drain(1));
  EXPECT_FALSE(rt.request_drain(1));  // already draining: refused, not doubled

  // The DrainComplete arrives on the feedback path; keep traffic flowing
  // to the survivors while it lands.
  common::SeqNo seq = 3000;
  for (int i = 0; i < 20000 && rt.drain_log().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const auto log = rt.drain_log();
  ASSERT_EQ(log.size(), 1u);
  route_stream(rt, seq, seq + 2000);
  seq += 2000;
  flush_to_run(rt, seq);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  const auto& event = log.front();
  EXPECT_EQ(event.instance, 1u);
  EXPECT_EQ(event.executed, event.routed);  // nothing lost in the drain
  EXPECT_EQ(instances[1]->stats.executed, event.routed);
  EXPECT_TRUE(instances[1]->stats.drained);
  EXPECT_FALSE(instances[1]->stats.crashed);
  EXPECT_NEAR(event.final_billed, std::max(0.0, event.cut + event.final_delta), 1e-9);
  EXPECT_EQ(rt.serving_instances(), 2u);
  // The retired slot leaves the candidate set through the same bookkeeping
  // as a fault (so it can rejoin on a later scale-up) — but a drain is a
  // clean exit: the quarantine *log*, the fault record, stays empty.
  EXPECT_EQ(rt.quarantined(), (std::vector<common::InstanceId>{1}));
  EXPECT_TRUE(rt.quarantine_log().empty());
  EXPECT_EQ(rt.state(), core::PosgScheduler::State::kRun);
  EXPECT_FALSE(instances[0]->stats.crashed);
  EXPECT_FALSE(instances[2]->stats.crashed);
}

/// Liveness beats elasticity: with the first instance draining, the last
/// serving one must refuse to drain — an empty cluster is never a valid
/// scale-down target.
TEST(SchedulerRuntime, DrainOfTheLastServingInstanceIsRefused) {
  const std::size_t k = 2;
  auto config = test_runtime_config(k);
  SchedulerRuntime rt(config);

  InstanceRuntimeConfig instance_config;
  instance_config.posg = config.posg;
  std::vector<std::unique_ptr<TestInstance>> instances;
  for (common::InstanceId op = 0; op < k; ++op) {
    auto [sched_end, inst_end] = net::socket_pair();
    rt.attach(op, std::make_unique<net::SocketTransport>(std::move(sched_end)));
    instances.push_back(spawn_instance(op, instance_config, std::move(inst_end)));
  }
  rt.start();
  route_stream(rt, 0, 1000);
  ASSERT_TRUE(rt.request_drain(0));
  EXPECT_FALSE(rt.request_drain(1));  // sole survivor: refused

  // The whole remaining stream lands on instance 1.
  common::SeqNo seq = 1000;
  for (int i = 0; i < 20000 && rt.drain_log().empty(); ++i) {
    rt.route((seq * 37) % 64, seq);
    ++seq;
    if ((seq & 15) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(rt.drain_log().size(), 1u);
  EXPECT_FALSE(rt.request_drain(1));  // still the sole survivor after retirement
  route_stream(rt, seq, seq + 1000);
  seq += 1000;
  flush_to_run(rt, seq);
  rt.finish();
  for (auto& instance : instances) {
    instance->join();
  }

  EXPECT_TRUE(instances[0]->stats.drained);
  EXPECT_FALSE(instances[1]->stats.drained);
  EXPECT_FALSE(instances[1]->stats.crashed);
  EXPECT_EQ(rt.serving_instances(), 1u);
  EXPECT_TRUE(rt.quarantine_log().empty());  // no fault anywhere in the run
}

TEST(InstanceRuntime, SurvivesCorruptTupleFrames) {
  // Satellite of the fault model: a corrupt frame reaching an instance is
  // dropped and counted; the instance keeps executing.
  auto [sched_end, inst_end] = net::socket_pair();
  InstanceRuntimeConfig config;
  config.recv_deadline = std::chrono::milliseconds(20);
  InstanceRuntime instance(7, config);
  InstanceRuntime::Stats stats;
  std::thread thread([&] {
    net::SocketTransport link(std::move(inst_end));
    stats = instance.run(link);
  });

  const auto hello = sched_end.recv_frame();
  ASSERT_TRUE(hello.has_value());
  net::TupleMessage tuple;
  tuple.seq = 0;
  tuple.item = 3;
  sched_end.send_frame(net::encode(tuple));
  sched_end.send_frame(std::vector<std::byte>{std::byte{0xEE}, std::byte{0xAA}});
  tuple.seq = 1;
  sched_end.send_frame(net::encode(tuple));
  sched_end.send_frame(net::encode(net::EndOfStream{}));
  thread.join();

  EXPECT_EQ(stats.executed, 2u);
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_FALSE(stats.crashed);
}

}  // namespace
