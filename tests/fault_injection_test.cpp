// Tests of the hardened transport layer (src/net/socket.*) and the
// deterministic fault injector (src/net/fault_injection.*): deadline
// receives, connect retry with backoff, and scripted drop / delay /
// corrupt / disconnect faults whose sequence is reproducible from a seed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/fault_injection.hpp"
#include "net/socket.hpp"

namespace {

using namespace posg;
using net::FaultDir;
using net::FaultInjector;
using net::FaultPlan;
using Clock = std::chrono::steady_clock;

std::vector<std::byte> bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) {
    out.push_back(static_cast<std::byte>(v));
  }
  return out;
}

TEST(SocketDeadline, DistinguishesSilenceFromShutdown) {
  auto [a, b] = net::socket_pair();
  // Idle peer: timeout, no bytes consumed, safe to retry.
  auto idle = b.recv_frame(std::chrono::milliseconds(30));
  EXPECT_EQ(idle.status, net::RecvStatus::kTimeout);
  // A frame sent later is still delivered intact by the retried call.
  a.send_frame(bytes({1, 2, 3}));
  auto framed = b.recv_frame(std::chrono::milliseconds(1000));
  ASSERT_EQ(framed.status, net::RecvStatus::kFrame);
  EXPECT_EQ(framed.payload, bytes({1, 2, 3}));
  // Orderly shutdown: EOF, not timeout, not an exception.
  a.close();
  auto eof = b.recv_frame(std::chrono::milliseconds(1000));
  EXPECT_EQ(eof.status, net::RecvStatus::kEof);
}

TEST(SocketDeadline, SendToClosedPeerThrowsInsteadOfSigpipe) {
  auto [a, b] = net::socket_pair();
  b.close();
  // Without MSG_NOSIGNAL this would kill the process with SIGPIPE; the
  // hardened send surfaces a catchable error instead.
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          a.send_frame(bytes({9}));
        }
      },
      std::system_error);
}

TEST(ConnectRetry, GivesUpAfterExhaustedSchedule) {
  net::ConnectRetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::milliseconds(1);
  policy.max_backoff = std::chrono::milliseconds(4);
  EXPECT_THROW(net::connect("/tmp/posg_no_such_listener.sock", policy), std::runtime_error);
}

TEST(ConnectRetry, SurvivesServerThatBindsLate) {
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_late_bind_test.sock").string();
  std::remove(path.c_str());
  net::Socket client;
  std::thread connector([&] {
    net::ConnectRetryPolicy policy;
    policy.initial_backoff = std::chrono::milliseconds(2);
    client = net::connect(path, policy);
  });
  // Bind only after the client has started (and failed) its first attempts.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  net::Listener listener(path);
  net::Socket server = listener.accept();
  connector.join();
  client.send_frame(bytes({42}));
  auto received = server.recv_frame();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, bytes({42}));
}

TEST(FaultPlan, SameSeedReproducesIdenticalPlan) {
  const auto first = FaultPlan::random(42, 100, 10);
  const auto second = FaultPlan::random(42, 100, 10);
  ASSERT_EQ(first.actions().size(), second.actions().size());
  ASSERT_EQ(first.actions().size(), 10u);
  for (std::size_t i = 0; i < first.actions().size(); ++i) {
    EXPECT_EQ(first.actions()[i].describe(), second.actions()[i].describe());
  }
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  const auto first = FaultPlan::random(1, 100, 10);
  const auto second = FaultPlan::random(2, 100, 10);
  std::vector<std::string> a, b;
  for (const auto& action : first.actions()) {
    a.push_back(action.describe());
  }
  for (const auto& action : second.actions()) {
    b.push_back(action.describe());
  }
  EXPECT_NE(a, b);
}

TEST(FaultInjector, DropSwallowsExactlyTheScriptedFrame) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.drop(FaultDir::kSend, 1);
  FaultInjector injector(std::move(a), plan);
  injector.send_frame(bytes({0}));
  injector.send_frame(bytes({1}));  // dropped
  injector.send_frame(bytes({2}));
  injector.close();
  EXPECT_EQ(*b.recv_frame(), bytes({0}));
  EXPECT_EQ(*b.recv_frame(), bytes({2}));
  EXPECT_FALSE(b.recv_frame().has_value());
  EXPECT_EQ(injector.frames_sent(), 3u);
  ASSERT_EQ(injector.event_log().size(), 1u);
  EXPECT_EQ(injector.event_log().front(), plan.actions().front().describe());
}

TEST(FaultInjector, CorruptFlipsTheScriptedByte) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.corrupt(FaultDir::kSend, 0, 2, 0x01);
  FaultInjector injector(std::move(a), plan);
  injector.send_frame(bytes({10, 20, 30}));
  injector.close();
  EXPECT_EQ(*b.recv_frame(), bytes({10, 20, 30 ^ 0x01}));
}

TEST(FaultInjector, DelayHoldsTheFrameBack) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.delay(FaultDir::kSend, 0, std::chrono::milliseconds(40));
  FaultInjector injector(std::move(a), plan);
  const auto start = Clock::now();
  injector.send_frame(bytes({5}));
  const auto elapsed = Clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_EQ(*b.recv_frame(), bytes({5}));
}

TEST(FaultInjector, DisconnectAfterSendSeversTheLink) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.disconnect_after(FaultDir::kSend, 1);
  FaultInjector injector(std::move(a), plan);
  injector.send_frame(bytes({0}));
  injector.send_frame(bytes({1}));  // delivered, then the link dies
  // The fd stays owned (the sever is shutdown(), not close(), so it is
  // safe against a concurrent reader); the dead link surfaces as EPIPE.
  EXPECT_TRUE(injector.valid());
  EXPECT_THROW(injector.send_frame(bytes({2})), std::system_error);
  EXPECT_EQ(*b.recv_frame(), bytes({0}));
  EXPECT_EQ(*b.recv_frame(), bytes({1}));
  EXPECT_FALSE(b.recv_frame().has_value());  // peer observes a crash-style EOF
}

TEST(FaultInjector, RecvDropSkipsToTheNextFrame) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.drop(FaultDir::kRecv, 0);
  FaultInjector injector(std::move(a), plan);
  b.send_frame(bytes({0}));  // consumed and discarded
  b.send_frame(bytes({1}));
  auto received = injector.recv_frame(std::chrono::milliseconds(1000));
  ASSERT_EQ(received.status, net::RecvStatus::kFrame);
  EXPECT_EQ(received.payload, bytes({1}));
  EXPECT_EQ(injector.frames_received(), 2u);
}

TEST(FaultInjector, RecvDisconnectDeliversThenReportsEof) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.disconnect_after(FaultDir::kRecv, 0);
  FaultInjector injector(std::move(a), plan);
  b.send_frame(bytes({7}));
  b.send_frame(bytes({8}));  // never seen: the injector kills the link first
  auto first = injector.recv_frame(std::chrono::milliseconds(1000));
  ASSERT_EQ(first.status, net::RecvStatus::kFrame);
  EXPECT_EQ(first.payload, bytes({7}));
  auto second = injector.recv_frame(std::chrono::milliseconds(1000));
  EXPECT_EQ(second.status, net::RecvStatus::kEof);
}

TEST(FaultPlan, RandomGrayIsSeedStableAndSeparateFromRandom) {
  // random_gray must replay bit-for-bit from its seed — and must be a
  // *separate* stream from random(), whose pinned byte-stable plans may
  // never move.
  const auto first = FaultPlan::random_gray(42, 100, 12);
  const auto second = FaultPlan::random_gray(42, 100, 12);
  ASSERT_EQ(first.actions().size(), 12u);
  for (std::size_t i = 0; i < first.actions().size(); ++i) {
    EXPECT_EQ(first.actions()[i].describe(), second.actions()[i].describe());
  }
  const auto crash_only = FaultPlan::random(42, 100, 12);
  std::vector<std::string> gray_strs, crash_strs;
  for (const auto& action : first.actions()) {
    gray_strs.push_back(action.describe());
  }
  for (const auto& action : crash_only.actions()) {
    crash_strs.push_back(action.describe());
  }
  EXPECT_NE(gray_strs, crash_strs);
  // random() never emits a gray kind (the pinned streams depend on it).
  using Kind = net::FaultAction::Kind;
  for (const auto& action : crash_only.actions()) {
    EXPECT_TRUE(action.kind == Kind::kDrop || action.kind == Kind::kDelay ||
                action.kind == Kind::kCorrupt || action.kind == Kind::kDisconnect);
  }
}

TEST(FaultInjector, SlowDelaysEveryFrameInItsRange) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.slow(FaultDir::kSend, 1, 2, std::chrono::milliseconds(25));
  FaultInjector injector(std::move(a), plan);
  injector.send_frame(bytes({0}));  // before the range: untouched
  for (std::uint64_t frame = 1; frame <= 2; ++frame) {
    const auto start = Clock::now();
    injector.send_frame(bytes({static_cast<int>(frame)}));
    EXPECT_GE(Clock::now() - start, std::chrono::milliseconds(25)) << "frame " << frame;
  }
  injector.send_frame(bytes({3}));  // past the range
  injector.close();
  for (int i = 0; i <= 3; ++i) {
    EXPECT_EQ(*b.recv_frame(), bytes({i}));  // slowed, never lost
  }
  EXPECT_EQ(injector.event_log().size(), 2u);
}

TEST(FaultInjector, PartitionDropsTheWholeRange) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.partition(FaultDir::kSend, 1, 3);  // one-way: frames 1..3 vanish
  FaultInjector injector(std::move(a), plan);
  for (int i = 0; i < 6; ++i) {
    injector.send_frame(bytes({i}));
  }
  injector.close();
  EXPECT_EQ(*b.recv_frame(), bytes({0}));
  EXPECT_EQ(*b.recv_frame(), bytes({4}));
  EXPECT_EQ(*b.recv_frame(), bytes({5}));
  EXPECT_FALSE(b.recv_frame().has_value());
  EXPECT_EQ(injector.event_log().size(), 3u);
}

TEST(FaultInjector, StutterStallsAtBurstBoundaries) {
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  // burst = 2: every third frame of the range stalls (phases 2 and 5).
  plan.stutter(FaultDir::kSend, 0, 6, 2, std::chrono::milliseconds(20));
  FaultInjector injector(std::move(a), plan);
  for (int frame = 0; frame < 6; ++frame) {
    const auto start = Clock::now();
    injector.send_frame(bytes({frame}));
    const auto elapsed = Clock::now() - start;
    if (frame % 3 == 2) {
      EXPECT_GE(elapsed, std::chrono::milliseconds(20)) << "frame " << frame << " did not stall";
    }
  }
  injector.close();
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(*b.recv_frame(), bytes({i}));  // stuttered, never lost
  }
  EXPECT_EQ(injector.event_log().size(), 2u);  // only the stalls are logged
}

TEST(FaultInjector, RecvPartitionStarvesTheReader) {
  // A one-way partition on the receive side: the frames are consumed off
  // the wire and discarded, exactly like in-flight loss.
  auto [a, b] = net::socket_pair();
  FaultPlan plan;
  plan.partition(FaultDir::kRecv, 0, 2);
  FaultInjector injector(std::move(a), plan);
  b.send_frame(bytes({0}));
  b.send_frame(bytes({1}));
  b.send_frame(bytes({2}));
  auto received = injector.recv_frame(std::chrono::milliseconds(1000));
  ASSERT_EQ(received.status, net::RecvStatus::kFrame);
  EXPECT_EQ(received.payload, bytes({2}));
  EXPECT_EQ(injector.frames_received(), 3u);
}

/// Acceptance: the same FaultPlan produces the same fault sequence (and
/// the same surviving traffic) on every run — asserted by executing one
/// randomized plan twice over identical streams and comparing the event
/// logs and the frames the peer actually received.
TEST(FaultInjector, SamePlanSameTrafficSameFaultSequence) {
  const auto plan = FaultPlan::random(7, 16, 12);
  ASSERT_FALSE(plan.empty());

  const auto run_once = [&plan] {
    auto [a, b] = net::socket_pair();
    FaultInjector injector(std::move(a), plan);
    std::vector<std::vector<std::byte>> delivered;
    std::thread receiver([&b, &delivered] {
      while (auto frame = b.recv_frame()) {
        delivered.push_back(std::move(*frame));
      }
    });
    for (int i = 0; i < 16; ++i) {
      try {
        injector.send_frame(bytes({i, i + 1, i + 2}));
      } catch (const std::system_error&) {
        break;  // scripted disconnect — part of the sequence under test
      }
    }
    injector.close();
    receiver.join();
    return std::make_pair(injector.event_log(), delivered);
  };

  const auto first = run_once();
  const auto second = run_once();
  EXPECT_FALSE(first.first.empty());  // the seed's plan fires at least once
  EXPECT_EQ(first.first, second.first);    // identical fault sequence
  EXPECT_EQ(first.second, second.second);  // identical surviving traffic
}

}  // namespace
