// Robustness matrix for the crash-recovery checkpoint (core/checkpoint.hpp,
// DESIGN.md §14): the codec round-trips byte-identically through
// PosgScheduler::restore, every torn/corrupt/foreign image is rejected with
// std::invalid_argument (the runtime's cold-start signal), the atomic file
// helpers survive truncation on disk, and a restored scheduler's reattach
// path isolates pre-crash replies from Ĉ (the double-billing argument).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <span>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/instance_tracker.hpp"
#include "core/posg_scheduler.hpp"

namespace {

using namespace posg;
using core::CheckpointState;
using core::PosgConfig;
using core::PosgScheduler;

PosgConfig small_config() {
  PosgConfig config;
  config.window = 8;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  config.epsilon = 0.1;  // coarse sketch keeps the checkpoint images compact
  return config;
}

std::vector<core::InstanceTracker> make_trackers(std::size_t k, const PosgConfig& config) {
  std::vector<core::InstanceTracker> trackers;
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  return trackers;
}

/// Drives the full protocol loop (schedule → execute → ship → reply) until
/// `target` epochs completed, so the captured state carries real Ĉ values,
/// shipped sketches, and epoch history rather than cold-start zeros.
void drive_epochs(PosgScheduler& scheduler, std::vector<core::InstanceTracker>& trackers,
                  std::uint64_t target, common::SeqNo& seq) {
  for (int guard = 0; guard < 200000 && scheduler.epochs_completed() < target; ++guard) {
    const common::Item item = seq % 32;
    const auto decision = scheduler.schedule(item, seq);
    ++seq;
    auto& tracker = trackers[decision.instance];
    if (auto shipment = tracker.on_executed(item, 1.0 + static_cast<double>(item % 8))) {
      scheduler.on_sketches(*shipment);
    }
    if (decision.sync_request) {
      scheduler.on_sync_reply(tracker.on_sync_request(*decision.sync_request));
    }
  }
  ASSERT_GE(scheduler.epochs_completed(), target) << "driver never completed the target epochs";
}

std::vector<std::byte> warm_image(std::size_t k) {
  PosgScheduler scheduler(k, small_config());
  auto trackers = make_trackers(k, small_config());
  common::SeqNo seq = 0;
  drive_epochs(scheduler, trackers, 2, seq);
  return core::encode(scheduler.checkpoint_state());
}

TEST(Checkpoint, RoundTripThroughRestoreIsByteIdentical) {
  const std::size_t k = 3;
  PosgScheduler scheduler(k, small_config());
  auto trackers = make_trackers(k, small_config());
  common::SeqNo seq = 0;
  drive_epochs(scheduler, trackers, 2, seq);

  const CheckpointState state = scheduler.checkpoint_state();
  const auto image = core::encode(state);

  PosgScheduler restored(k, small_config());
  restored.restore(core::decode(image));

  // The restored scheduler is indistinguishable from the original...
  EXPECT_EQ(restored.state(), scheduler.state());
  EXPECT_EQ(restored.epoch(), scheduler.epoch());
  EXPECT_EQ(restored.epochs_completed(), scheduler.epochs_completed());
  EXPECT_EQ(restored.estimated_loads(), scheduler.estimated_loads());
  // ...down to the byte: re-capturing and re-encoding reproduces the image.
  EXPECT_EQ(core::encode(restored.checkpoint_state()), image);
}

TEST(Checkpoint, EveryTruncationOfTheImageIsRejected) {
  const auto image = warm_image(3);
  ASSERT_NO_THROW(core::decode(image));
  for (std::size_t length = 0; length < image.size(); ++length) {
    const std::span<const std::byte> prefix(image.data(), length);
    EXPECT_THROW(core::decode(prefix), std::invalid_argument)
        << "prefix of " << length << "/" << image.size() << " bytes decoded";
  }
}

TEST(Checkpoint, AppendedTrailingBytesAreRejected) {
  auto image = warm_image(2);
  image.push_back(std::byte{0});
  EXPECT_THROW(core::decode(image), std::invalid_argument);
}

TEST(Checkpoint, EveryByteFlipIsCaught) {
  // Payload flips must fail the CRC; header flips must fail the magic,
  // version, size, or stored-CRC check. Either way: every single-byte
  // corruption of the image is rejected.
  const auto image = warm_image(2);
  for (std::size_t i = 0; i < image.size(); ++i) {
    auto corrupt = image;
    corrupt[i] ^= std::byte{0x40};
    EXPECT_THROW(core::decode(corrupt), std::invalid_argument)
        << "flip at byte " << i << " decoded";
  }
}

TEST(Checkpoint, VersionBumpIsRejected) {
  auto image = warm_image(2);
  const std::uint32_t future = core::kCheckpointVersion + 1;
  std::memcpy(image.data() + 4, &future, sizeof(future));
  EXPECT_THROW(core::decode(image), std::invalid_argument);
}

TEST(Checkpoint, BadMagicIsRejected) {
  auto image = warm_image(2);
  const std::uint32_t wrong = 0xDEADBEEF;
  std::memcpy(image.data(), &wrong, sizeof(wrong));
  EXPECT_THROW(core::decode(image), std::invalid_argument);
}

TEST(Checkpoint, RestoreRejectsInstanceCountMismatchAndLeavesColdStartIntact) {
  const auto state = core::decode(warm_image(3));
  PosgScheduler other(4, small_config());
  EXPECT_THROW(other.restore(state), std::invalid_argument);
  // The rejected image left the scheduler exactly as constructed — a cold
  // start is still possible (the runtime's degradation path).
  EXPECT_EQ(other.state(), PosgScheduler::State::kRoundRobin);
  EXPECT_EQ(other.epoch(), 0u);
  EXPECT_NO_THROW(other.schedule(1, 0));
}

TEST(Checkpoint, RestoreRejectsInvariantViolatingContent) {
  const auto valid = core::decode(warm_image(3));

  {
    auto tampered = valid;
    tampered.c_est[0] = -5.0;  // Ĉ must be non-negative
    PosgScheduler scheduler(3, small_config());
    EXPECT_THROW(scheduler.restore(tampered), std::invalid_argument);
  }
  {
    auto tampered = valid;
    // Quarantine exclusivity: a failed instance holding a Ĉ share (and a
    // sketch) is an internally inconsistent image.
    tampered.failed[1] = 1;
    PosgScheduler scheduler(3, small_config());
    EXPECT_THROW(scheduler.restore(tampered), std::invalid_argument);
  }
  {
    auto tampered = valid;
    tampered.epochs_completed = tampered.epoch + 1;  // non-monotone epoch
    PosgScheduler scheduler(3, small_config());
    EXPECT_THROW(scheduler.restore(tampered), std::invalid_argument);
  }
}

TEST(Checkpoint, FileHelpersRoundTripReplaceAndSignalMissing) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "posg_checkpoint_test.ckpt").string();
  std::filesystem::remove(path);

  EXPECT_FALSE(core::read_checkpoint_file(path).has_value());  // missing → cold start

  const auto first = warm_image(2);
  core::write_checkpoint_file(path, first);
  auto read_back = core::read_checkpoint_file(path);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, first);

  // Atomic replace: a second write supersedes, never appends or tears.
  const auto second = warm_image(3);
  core::write_checkpoint_file(path, second);
  read_back = core::read_checkpoint_file(path);
  ASSERT_TRUE(read_back.has_value());
  EXPECT_EQ(*read_back, second);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));

  std::filesystem::remove(path);
}

TEST(Checkpoint, TruncatedFileOnDiskIsReadButRejectedByDecode) {
  // Division of labor: read_checkpoint_file returns whatever bytes exist
  // (only *missing* is its signal); decode is the integrity gate.
  const auto dir = std::filesystem::temp_directory_path();
  const auto path = (dir / "posg_checkpoint_torn_test.ckpt").string();
  const auto image = warm_image(2);
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(image.data(), 1, image.size() / 2, file), image.size() / 2);
    std::fclose(file);
  }
  const auto torn = core::read_checkpoint_file(path);
  ASSERT_TRUE(torn.has_value());
  EXPECT_THROW(core::decode(*torn), std::invalid_argument);
  std::filesystem::remove(path);
}

/// The double-billing isolation argument, at the scheduler level: a crash
/// cuts an epoch mid-WAIT_ALL (markers out, replies withheld). After
/// restore + reattach, the pre-crash replies may still arrive (the
/// instances buffered them); they must land on the counted-stale path and
/// leave Ĉ untouched — the checkpointed cut already billed that history.
TEST(Checkpoint, ReattachIsolatesPreCrashRepliesFromBilling) {
  const std::size_t k = 2;
  PosgScheduler scheduler(k, small_config());
  auto trackers = make_trackers(k, small_config());
  common::SeqNo seq = 0;
  drive_epochs(scheduler, trackers, 1, seq);

  // Drive into WAIT_ALL, withholding every reply (markers piggyback on
  // scheduled tuples; execute them but do not answer).
  std::vector<std::pair<common::InstanceId, core::SyncRequest>> held;
  for (int guard = 0;
       guard < 200000 && scheduler.state() != PosgScheduler::State::kWaitAll; ++guard) {
    const common::Item item = seq % 32;
    const auto decision = scheduler.schedule(item, seq);
    ++seq;
    auto& tracker = trackers[decision.instance];
    if (auto shipment = tracker.on_executed(item, 1.0 + static_cast<double>(item % 8))) {
      if (scheduler.state() == PosgScheduler::State::kRun) {
        scheduler.on_sketches(*shipment);  // reopen the next epoch
      }
    }
    if (decision.sync_request) {
      held.emplace_back(decision.instance, *decision.sync_request);
    }
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  ASSERT_FALSE(held.empty());

  // "Crash" here: the checkpoint is the only thing that survives.
  const auto image = core::encode(scheduler.checkpoint_state());
  PosgScheduler restarted(k, small_config());
  restarted.restore(core::decode(image));
  const auto epochs_at_restore = restarted.epochs_completed();

  // Every survivor re-attaches; the seeded cut is exactly the restored Ĉ.
  for (common::InstanceId op = 0; op < k; ++op) {
    const auto expected = restarted.estimated_loads()[op];
    EXPECT_DOUBLE_EQ(restarted.reattach(op), expected);
  }
  // Re-attaching pre-satisfied every reply slot: the cut epoch completed
  // without a single Δ folding in.
  EXPECT_EQ(restarted.state(), PosgScheduler::State::kRun);
  EXPECT_EQ(restarted.epochs_completed(), epochs_at_restore + 1);

  const auto loads_after_reattach = restarted.estimated_loads();
  const auto stale_before = restarted.stale_reply_count();

  // The withheld pre-crash replies finally arrive (an instance replaying
  // its buffered frames). Counted stale, never billed.
  for (const auto& [op, marker] : held) {
    restarted.on_sync_reply(trackers[op].on_sync_request(marker));
  }
  EXPECT_EQ(restarted.estimated_loads(), loads_after_reattach);
  EXPECT_EQ(restarted.stale_reply_count(), stale_before + held.size());
}

}  // namespace
