// Tests for the experiment runner that builds the paper's setups.
#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace {

using namespace posg;
using sim::Experiment;
using sim::ExperimentConfig;
using sim::Policy;

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.n = 256;
  config.m = 4000;
  config.wn = 16;
  config.wmax = 16.0;
  config.k = 3;
  config.posg.window = 64;
  return config;
}

TEST(Experiment, InterArrivalMatchesOverprovisioningFormula) {
  auto config = tiny_config();
  config.overprovisioning = 1.25;
  Experiment experiment(config);
  EXPECT_NEAR(experiment.inter_arrival(),
              1.25 * experiment.mean_execution_time() / static_cast<double>(config.k), 1e-12);
}

TEST(Experiment, StreamIsDeterministicPerSeed) {
  const auto config = tiny_config();
  Experiment a(config);
  Experiment b(config);
  EXPECT_EQ(a.stream(), b.stream());
  auto other = config;
  other.stream_seed = config.stream_seed + 1;
  Experiment c(other);
  EXPECT_NE(a.stream(), c.stream());
}

TEST(Experiment, RunsEveryPolicy) {
  Experiment experiment(tiny_config());
  for (Policy policy : {Policy::kRoundRobin, Policy::kPosg, Policy::kFullKnowledge,
                        Policy::kBacklogOracle}) {
    const auto result = experiment.run(policy);
    EXPECT_EQ(result.policy, policy);
    EXPECT_GT(result.average_completion, 0.0);
    EXPECT_EQ(result.raw.completions.size(), tiny_config().m);
  }
}

TEST(Experiment, SameConfigSameResult) {
  Experiment experiment(tiny_config());
  const auto a = experiment.run(Policy::kRoundRobin);
  const auto b = experiment.run(Policy::kRoundRobin);
  EXPECT_DOUBLE_EQ(a.average_completion, b.average_completion);
}

TEST(Experiment, FullKnowledgeBeatsRoundRobinOnSkewedStreams) {
  auto config = tiny_config();
  config.m = 8000;
  config.distribution = "zipf-1.0";
  Experiment experiment(config);
  const double rr = experiment.run(Policy::kRoundRobin).average_completion;
  const double fk = experiment.run(Policy::kFullKnowledge).average_completion;
  EXPECT_LT(fk, rr);
}

TEST(Experiment, PhasesReachTheCostModel) {
  auto config = tiny_config();
  config.wn = 1;
  config.wmin = config.wmax = 10.0;
  config.phases = {{0, {1.0, 1.0, 1.0}}, {100, {2.0, 2.0, 2.0}}};
  Experiment experiment(config);
  EXPECT_DOUBLE_EQ(experiment.model().execution_time(0, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(experiment.model().execution_time(0, 0, 100), 20.0);
}

TEST(Experiment, PolicyNames) {
  EXPECT_EQ(sim::policy_name(Policy::kRoundRobin), "round-robin");
  EXPECT_EQ(sim::policy_name(Policy::kPosg), "posg");
  EXPECT_EQ(sim::policy_name(Policy::kFullKnowledge), "full-knowledge");
  EXPECT_EQ(sim::policy_name(Policy::kBacklogOracle), "backlog-oracle");
  EXPECT_EQ(sim::policy_name(Policy::kReactiveJsq), "reactive-jsq");
  EXPECT_EQ(sim::policy_name(Policy::kTwoChoices), "two-choices");
}

TEST(Experiment, ReactiveJsqRequiresReportPeriod) {
  auto config = tiny_config();
  Experiment experiment(config);
  EXPECT_THROW(experiment.run(Policy::kReactiveJsq), std::invalid_argument);
  config.load_report_period = 5.0;
  Experiment with_reports(config);
  const auto result = with_reports.run(Policy::kReactiveJsq);
  EXPECT_EQ(result.raw.completions.size(), config.m);
}

TEST(Experiment, TwoChoicesRunsEndToEnd) {
  Experiment experiment(tiny_config());
  const auto result = experiment.run(Policy::kTwoChoices);
  EXPECT_EQ(result.raw.completions.size(), tiny_config().m);
}

TEST(Experiment, LatencyAwarePosgRuns) {
  auto config = tiny_config();
  config.instance_latencies = {0.0, 5.0, 10.0};
  config.posg_latency_hints = true;
  Experiment experiment(config);
  const auto result = experiment.run(Policy::kPosg);
  EXPECT_EQ(result.raw.completions.size(), config.m);
}

TEST(Experiment, RunSeededVariesStreams) {
  auto config = tiny_config();
  const auto averages = sim::run_seeded(config, Policy::kRoundRobin, 4);
  ASSERT_EQ(averages.size(), 4u);
  // Different stream/assignment seeds should not all coincide.
  const bool all_equal = averages[0] == averages[1] && averages[1] == averages[2] &&
                         averages[2] == averages[3];
  EXPECT_FALSE(all_equal);
}

TEST(Experiment, RejectsBadOverprovisioning) {
  auto config = tiny_config();
  config.overprovisioning = 0.0;
  EXPECT_THROW(Experiment{config}, std::invalid_argument);
}

}  // namespace
