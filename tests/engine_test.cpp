// Tests for the mini stream-processing engine: topology validation,
// groupings, end-to-end tuple flow, POSG feedback wiring, error
// containment, and the completion recorder.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "engine/builtin.hpp"
#include "engine/engine.hpp"
#include "engine/posg_grouping.hpp"

namespace {

using namespace posg;
using namespace posg::engine;

/// Spout emitting the items 0..count-1 as fast as possible.
class CountingSpout final : public Spout {
 public:
  explicit CountingSpout(std::size_t count) : count_(count) {}
  bool next(OutputCollector& collector) override {
    if (emitted_ >= count_) {
      return false;
    }
    Tuple tuple;
    tuple.item = emitted_ % 16;
    collector.emit(std::move(tuple));
    ++emitted_;
    return true;
  }

 private:
  std::size_t count_;
  std::size_t emitted_ = 0;
};

SpoutFactory counting_spout(std::size_t count) {
  return [count](const ComponentContext&) { return std::make_unique<CountingSpout>(count); };
}

TEST(TopologyBuilder, ValidatesStructure) {
  TopologyBuilder ok;
  ok.add_spout("src", counting_spout(1));
  ok.add_bolt("sink", [](const ComponentContext&) {
    return std::make_unique<LambdaBolt>([](const Tuple&, OutputCollector&,
                                           const ComponentContext&) {});
  }, 1, {{"src", std::make_shared<ShuffleGrouping>()}});
  EXPECT_NO_THROW(ok.build());

  TopologyBuilder duplicate;
  duplicate.add_spout("x", counting_spout(1));
  EXPECT_THROW(duplicate.add_spout("x", counting_spout(1)), std::invalid_argument);

  TopologyBuilder unknown_input;
  unknown_input.add_spout("src", counting_spout(1));
  EXPECT_THROW(unknown_input.add_bolt("b",
                                      [](const ComponentContext&) {
                                        return std::make_unique<LambdaBolt>(
                                            [](const Tuple&, OutputCollector&,
                                               const ComponentContext&) {});
                                      },
                                      1, {{"nope", std::make_shared<ShuffleGrouping>()}}),
               std::invalid_argument);

  TopologyBuilder empty;
  EXPECT_THROW(empty.build(), std::invalid_argument);
}

TEST(Groupings, ShuffleIsRoundRobin) {
  ShuffleGrouping grouping;
  Tuple t;
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(grouping.route(t, 4).instance, i % 4);
  }
}

TEST(Groupings, FieldsIsConsistentPerItem) {
  FieldsGrouping grouping;
  Tuple a;
  a.item = 7;
  const auto first = grouping.route(a, 5).instance;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(grouping.route(a, 5).instance, first);
  }
  // Different items spread over instances.
  std::set<common::InstanceId> targets;
  for (common::Item item = 0; item < 50; ++item) {
    Tuple t;
    t.item = item;
    targets.insert(grouping.route(t, 5).instance);
  }
  EXPECT_EQ(targets.size(), 5u);
}

TEST(Groupings, GlobalAlwaysZero) {
  GlobalGrouping grouping;
  Tuple t;
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(grouping.route(t, 3).instance, 0u);
  }
}

TEST(Engine, DeliversEveryTupleAndRecordsCompletions) {
  const std::size_t m = 2000;
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(m));
  std::atomic<std::uint64_t> processed{0};
  builder.add_bolt("sink",
                   [&processed](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [&processed](const Tuple&, OutputCollector&, const ComponentContext&) {
                           processed.fetch_add(1);
                         });
                   },
                   3, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(processed.load(), m);
  EXPECT_EQ(engine.completions().count(), m);
  const auto series = engine.completions().series();
  EXPECT_EQ(series.size(), m);
  EXPECT_GE(series.average(), 0.0);
  const auto stats = engine.stats("sink");
  EXPECT_EQ(stats.executed, m);
  EXPECT_EQ(stats.errors, 0u);
  // Round-robin split across 3 instances.
  for (std::uint64_t count : stats.per_instance) {
    EXPECT_NEAR(static_cast<double>(count), m / 3.0, 2.0);
  }
}

TEST(Engine, MultiStageTopologyForwardsTuples) {
  const std::size_t m = 500;
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(m));
  builder.add_bolt("middle",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple& t, OutputCollector& out, const ComponentContext&) {
                           Tuple forwarded = t;  // keep seq + emitted_at
                           out.emit(std::move(forwarded));
                         });
                   },
                   2, {{"src", std::make_shared<ShuffleGrouping>()}});
  builder.add_bolt("sink",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple&, OutputCollector&, const ComponentContext&) {});
                   },
                   2, {{"middle", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(engine.stats("middle").executed, m);
  EXPECT_EQ(engine.stats("middle").emitted, m);
  EXPECT_EQ(engine.stats("sink").executed, m);
  // Completion is recorded at the terminal bolt only.
  EXPECT_EQ(engine.completions().count(), m);
}

TEST(Engine, FanOutDeliversToAllConsumers) {
  // One spout feeding two independent bolts: every tuple reaches both,
  // and the recorder keeps one completion per tuple (the latest).
  const std::size_t m = 300;
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(m));
  std::atomic<std::uint64_t> left{0};
  std::atomic<std::uint64_t> right{0};
  builder.add_bolt("left",
                   [&left](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [&left](const Tuple&, OutputCollector&, const ComponentContext&) {
                           left.fetch_add(1);
                         });
                   },
                   1, {{"src", std::make_shared<ShuffleGrouping>()}});
  builder.add_bolt("right",
                   [&right](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [&right](const Tuple&, OutputCollector&, const ComponentContext&) {
                           right.fetch_add(1);
                         });
                   },
                   2, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(left.load(), m);
  EXPECT_EQ(right.load(), m);
  const auto series = engine.completions().series();
  EXPECT_EQ(series.size(), m);  // deduplicated per sequence number
}

TEST(Engine, ContainsBoltExceptions) {
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(100));
  builder.add_bolt("flaky",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple& t, OutputCollector&, const ComponentContext&) {
                           if (t.seq % 10 == 0) {
                             throw std::runtime_error("injected failure");
                           }
                         });
                   },
                   2, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  const auto stats = engine.stats("flaky");
  EXPECT_EQ(stats.executed, 100u);
  EXPECT_EQ(stats.errors, 10u);
  // Failed tuples still count as completed (the executor keeps going).
  EXPECT_EQ(engine.completions().count(), 100u);
}

TEST(Engine, PosgGroupingReachesRunState) {
  const std::size_t m = 6000;
  const std::size_t k = 3;
  core::PosgConfig config;
  config.window = 128;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  auto grouping = std::make_shared<PosgGrouping>(k, config);

  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(m));
  builder.add_bolt("work",
                   [](const ComponentContext&) {
                     return std::make_unique<SleepBolt>(
                         [](common::Item item, common::InstanceId, common::SeqNo) {
                           return 0.02 * static_cast<double>(item % 4);
                         });
                   },
                   k, {{"src", grouping}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(engine.completions().count(), m);
  EXPECT_EQ(engine.stats("work").executed, m);
  // The protocol must have engaged (a late shipment may leave it
  // mid-epoch at stream end, but never back in ROUND_ROBIN).
  EXPECT_NE(grouping->scheduler_state(), core::PosgScheduler::State::kRoundRobin);
}

TEST(Engine, TwoStagePipelineWithTwoPosgGroupings) {
  // source -> stage1 (2 instances) -> stage2 (3 instances), both hops
  // scheduled by independent POSG groupings. Exercises multiple feedback
  // loops in one topology.
  const std::size_t m = 4000;
  core::PosgConfig config;
  config.window = 64;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  auto hop1 = std::make_shared<PosgGrouping>(2, config);
  auto hop2 = std::make_shared<PosgGrouping>(3, config);

  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(m));
  builder.add_bolt("stage1",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple& t, OutputCollector& out, const ComponentContext&) {
                           engine::busy_wait_for(0.002 * static_cast<double>(t.item % 4));
                           Tuple forwarded = t;
                           out.emit(std::move(forwarded));
                         });
                   },
                   2, {{"src", hop1}});
  builder.add_bolt("stage2",
                   [](const ComponentContext&) {
                     return std::make_unique<SleepBolt>(
                         [](common::Item item, common::InstanceId, common::SeqNo) {
                           return 0.01 * static_cast<double>(item % 4);
                         });
                   },
                   3, {{"stage1", hop2}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(engine.stats("stage1").executed, m);
  EXPECT_EQ(engine.stats("stage2").executed, m);
  EXPECT_EQ(engine.completions().count(), m);
  EXPECT_NE(hop1->scheduler_state(), core::PosgScheduler::State::kRoundRobin);
  EXPECT_NE(hop2->scheduler_state(), core::PosgScheduler::State::kRoundRobin);
}

TEST(Engine, ReportsBusyTimeAndQueuePeaks) {
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(200));
  builder.add_bolt("work",
                   [](const ComponentContext&) {
                     return std::make_unique<SleepBolt>(
                         [](common::Item, common::InstanceId, common::SeqNo) { return 0.5; });
                   },
                   2, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  const auto stats = engine.stats("work");
  ASSERT_EQ(stats.busy_ms.size(), 2u);
  ASSERT_EQ(stats.queue_peak.size(), 2u);
  for (common::TimeMs busy : stats.busy_ms) {
    EXPECT_GE(busy, 100 * 0.5 * 0.8);  // ~100 tuples x 0.5 ms each, slack
  }
  // The spout emits as fast as possible while the bolt sleeps: queues must
  // have backed up beyond a single tuple.
  EXPECT_GT(stats.queue_peak[0] + stats.queue_peak[1], 2u);
}

TEST(Engine, RejectsSecondRun) {
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(1));
  builder.add_bolt("sink",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple&, OutputCollector&, const ComponentContext&) {});
                   },
                   1, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  engine.run();
  EXPECT_THROW(engine.run(), std::invalid_argument);
}

TEST(Engine, UnknownComponentStatsThrow) {
  TopologyBuilder builder;
  builder.add_spout("src", counting_spout(1));
  builder.add_bolt("sink",
                   [](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [](const Tuple&, OutputCollector&, const ComponentContext&) {});
                   },
                   1, {{"src", std::make_shared<ShuffleGrouping>()}});
  Engine engine(builder.build());
  EXPECT_THROW(engine.stats("ghost"), std::invalid_argument);
}

TEST(CompletionRecorder, KeepsMaxPerSequence) {
  CompletionRecorder recorder;
  recorder.record(0, 5.0);
  recorder.record(0, 9.0);  // fan-out: last operator concludes later
  recorder.record(0, 7.0);
  recorder.record(2, 1.0);
  const auto series = recorder.series();
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.at(0), 9.0);
  EXPECT_DOUBLE_EQ(series.at(2), 1.0);
}

TEST(BusyWait, WaitsApproximatelyTheRequestedTime) {
  const auto start = Clock::now();
  busy_wait_for(2.0);
  const auto elapsed = elapsed_ms(start, Clock::now());
  EXPECT_GE(elapsed, 2.0);
  // The contract is a lower bound; the ceiling only guards against an
  // unbounded spin. Keep it loose: on a loaded CI machine (parallel ctest,
  // sanitizer builds) the waiting thread can lose the CPU for tens of ms.
  EXPECT_LT(elapsed, 200.0);
}

TEST(SyntheticSpout, EmitsAllItemsWithPacing) {
  const std::vector<common::Item> items{1, 2, 3, 4, 5};
  TopologyBuilder builder;
  builder.add_spout("src", [&items](const ComponentContext&) {
    return std::make_unique<SyntheticSpout>(items, std::chrono::microseconds(500));
  });
  std::atomic<std::uint64_t> seen{0};
  builder.add_bolt("sink",
                   [&seen](const ComponentContext&) {
                     return std::make_unique<LambdaBolt>(
                         [&seen](const Tuple&, OutputCollector&, const ComponentContext&) {
                           seen.fetch_add(1);
                         });
                   },
                   1, {{"src", std::make_shared<ShuffleGrouping>()}});
  const auto start = Clock::now();
  Engine engine(builder.build());
  engine.run();
  EXPECT_EQ(seen.load(), items.size());
  // 5 items at 500 us spacing: at least 2 ms of pacing.
  EXPECT_GE(elapsed_ms(start, Clock::now()), 2.0);
}

}  // namespace
