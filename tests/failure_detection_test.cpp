// Tests of PosgScheduler's quarantine API (mark_failed) and the stale-
// reply accounting: the scheduler-core half of the fault-tolerance layer
// (the runtime half — detection — is covered by runtime_test.cpp).
#include <gtest/gtest.h>

#include <numeric>

#include "core/instance_tracker.hpp"
#include "core/posg_scheduler.hpp"

namespace {

using namespace posg;
using core::Decision;
using core::InstanceTracker;
using core::PosgConfig;
using core::PosgScheduler;
using core::SyncRequest;

PosgConfig test_config() {
  PosgConfig config;
  config.window = 4;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  return config;
}

core::SketchShipment make_shipment(common::InstanceId op, const PosgConfig& config,
                                   common::Item item = 1, common::TimeMs cost = 2.0) {
  InstanceTracker tracker(op, config);
  for (int i = 0; i < 1000; ++i) {
    if (auto shipment = tracker.on_executed(item, cost)) {
      return *shipment;
    }
  }
  throw std::logic_error("make_shipment: tracker never stabilized");
}

/// Drives a k-instance scheduler through one complete epoch into RUN,
/// returning the markers it emitted.
std::vector<SyncRequest> drive_to_run(PosgScheduler& scheduler, const PosgConfig& config,
                                      std::size_t k) {
  for (common::InstanceId op = 0; op < k; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<SyncRequest> requests(k);
  for (common::SeqNo i = 0; i < k; ++i) {
    const Decision d = scheduler.schedule(1, i);
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  for (common::InstanceId op = 0; op < k; ++op) {
    scheduler.on_sync_reply({op, requests[op].epoch, 0.0});
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  return requests;
}

TEST(MarkFailed, RemovesInstanceFromGreedyCandidates) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  drive_to_run(scheduler, config, 3);

  scheduler.mark_failed(1);
  EXPECT_TRUE(scheduler.is_failed(1));
  EXPECT_EQ(scheduler.live_instances(), 2u);
  EXPECT_EQ(scheduler.failed_instances(), (std::vector<common::InstanceId>{1}));
  for (common::SeqNo i = 0; i < 200; ++i) {
    EXPECT_NE(scheduler.schedule(i % 8, i).instance, 1u);
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(MarkFailed, IsIdempotent) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  drive_to_run(scheduler, config, 3);
  scheduler.mark_failed(2);
  scheduler.mark_failed(2);
  EXPECT_EQ(scheduler.live_instances(), 2u);
}

TEST(MarkFailed, LastLiveInstanceQuarantineIsSurvivableAndTyped) {
  // Overload-resilience semantics: quarantining the last live instance is
  // legal (it may rejoin later); scheduling onto an empty cluster is the
  // defined, typed error path — never an abort.
  const auto config = test_config();
  PosgScheduler one(1, config);
  one.mark_failed(0);
  EXPECT_EQ(one.live_instances(), 0u);
  EXPECT_THROW(one.schedule(1, 0), core::NoLiveInstanceError);
  EXPECT_THROW(one.mark_failed(7), std::invalid_argument);  // out of range stays typed

  PosgScheduler two(2, config);
  two.mark_failed(0);
  two.mark_failed(1);
  EXPECT_EQ(two.live_instances(), 0u);
  EXPECT_THROW(two.schedule(1, 0), core::NoLiveInstanceError);
  // NoLiveInstanceError is a runtime_error (the runtime's catch path).
  EXPECT_THROW(two.schedule(1, 0), std::runtime_error);
}

TEST(MarkFailed, RejoinRevivesAnEmptyCluster) {
  const auto config = test_config();
  PosgScheduler scheduler(1, config);
  scheduler.mark_failed(0);
  ASSERT_THROW(scheduler.schedule(1, 0), core::NoLiveInstanceError);
  scheduler.rejoin(0);
  EXPECT_EQ(scheduler.live_instances(), 1u);
  EXPECT_EQ(scheduler.rejoin_count(), 1u);
  EXPECT_EQ(scheduler.schedule(1, 0).instance, 0u);
}

TEST(MarkFailed, SingleSurvivorAbsorbsEntireLoadShare) {
  // k = 1 survivor: the redistribution loop has exactly one recipient and
  // must conserve total C-hat into it.
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  drive_to_run(scheduler, config, 2);
  for (common::SeqNo i = 0; i < 40; ++i) {
    scheduler.schedule(1 + i % 3, i);
  }
  const auto before = scheduler.estimated_loads();
  const double total_before = before[0] + before[1];
  scheduler.mark_failed(0);
  const auto after = scheduler.estimated_loads();
  EXPECT_DOUBLE_EQ(after[0], 0.0);
  EXPECT_NEAR(after[1], total_before, 1e-9);
  // And scheduling still works on the lone survivor.
  for (common::SeqNo i = 0; i < 20; ++i) {
    EXPECT_EQ(scheduler.schedule(1, 100 + i).instance, 1u);
  }
}

TEST(MarkFailed, RedistributesLoadShareOverSurvivors) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  drive_to_run(scheduler, config, 3);
  for (common::SeqNo i = 0; i < 30; ++i) {
    scheduler.schedule(1, i);
  }
  const auto before = scheduler.estimated_loads();
  const double total_before = std::accumulate(before.begin(), before.end(), 0.0);
  const double gap_before = before[0] - before[2];

  scheduler.mark_failed(1);
  const auto& after = scheduler.estimated_loads();
  EXPECT_DOUBLE_EQ(after[1], 0.0);
  // Total Ĉ is conserved and the survivors' relative ordering preserved
  // (each absorbed the same share).
  EXPECT_NEAR(after[0] + after[2], total_before, 1e-9);
  EXPECT_NEAR(after[0] - after[2], gap_before, 1e-9);
}

TEST(MarkFailed, DuringWaitAllCompletesEpochOnSurvivors) {
  // The WAIT_ALL liveness hole: instance 2 dies between the marker and
  // its reply; the survivors' replies must be enough to reach RUN.
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<SyncRequest> requests(3);
  for (common::SeqNo i = 0; i < 3; ++i) {
    const Decision d = scheduler.schedule(1, i);
    ASSERT_TRUE(d.sync_request.has_value());
    requests[d.instance] = *d.sync_request;
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);

  scheduler.on_sync_reply({0, requests[0].epoch, 5.0});
  scheduler.on_sync_reply({1, requests[1].epoch, -2.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);  // still waiting on 2

  scheduler.mark_failed(2);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  EXPECT_EQ(scheduler.live_instances(), 2u);
}

TEST(MarkFailed, DuringSendAllAbandonsPendingMarker) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);

  // First marker goes out, then the next instance in rotation dies with
  // its marker still pending.
  const Decision first = scheduler.schedule(1, 0);
  ASSERT_TRUE(first.sync_request.has_value());
  const common::InstanceId victim = (first.instance + 1) % 3;
  scheduler.mark_failed(victim);
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);

  // The rotation now only ever visits survivors; once the remaining
  // marker is piggy-backed the epoch waits on two replies, not three.
  std::vector<SyncRequest> requests(3);
  requests[first.instance] = *first.sync_request;
  for (common::SeqNo i = 1; i < 4 && scheduler.state() == PosgScheduler::State::kSendAll; ++i) {
    const Decision d = scheduler.schedule(1, i);
    EXPECT_NE(d.instance, victim);
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  for (common::InstanceId op = 0; op < 3; ++op) {
    if (op != victim) {
      scheduler.on_sync_reply({op, requests[op].epoch, 0.0});
    }
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(MarkFailed, RoundRobinRotationSkipsQuarantined) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  // Only instance 0 shipped: still ROUND_ROBIN when 1 dies.
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.mark_failed(1);
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRoundRobin);
  std::vector<int> hits(3, 0);
  for (common::SeqNo i = 0; i < 10; ++i) {
    ++hits[scheduler.schedule(1, i).instance];
  }
  EXPECT_EQ(hits[0], 5);
  EXPECT_EQ(hits[1], 0);
  EXPECT_EQ(hits[2], 5);
}

TEST(MarkFailed, UnblocksBootstrapWhenMissingShipperDies) {
  // Fig. 3.A/B requires a sketch from *every* instance before leaving
  // ROUND_ROBIN — a crashed instance must not pin the scheduler there.
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sketches(make_shipment(1, config));
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRoundRobin);
  scheduler.mark_failed(2);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  EXPECT_EQ(scheduler.epoch(), 1u);
}

TEST(MarkFailed, IgnoresLateTrafficFromQuarantinedInstance) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  const auto requests = drive_to_run(scheduler, config, 3);
  scheduler.mark_failed(0);
  const auto loads = scheduler.estimated_loads();
  // A zombie's late shipment and reply must both be dropped.
  scheduler.on_sketches(make_shipment(0, config));
  scheduler.on_sync_reply({0, requests[0].epoch, 1e6});
  EXPECT_EQ(scheduler.estimated_loads(), loads);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(StaleReplies, DelayedReplyIsCountedAndNotFoldedIn) {
  // Regression (satellite): a SyncReply delayed past its epoch used to be
  // silently discarded; it must be *counted* and must never perturb the
  // current epoch's bookkeeping.
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  const auto epoch1 = drive_to_run(scheduler, config, 2);
  ASSERT_EQ(scheduler.stale_reply_count(), 0u);

  // A fresh shipment opens epoch 2; now deliver instance 1's epoch-1
  // reply again, "delayed in the network".
  scheduler.on_sketches(make_shipment(0, config));
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  ASSERT_EQ(scheduler.epoch(), 2u);
  const auto loads = scheduler.estimated_loads();

  scheduler.on_sync_reply({1, epoch1[1].epoch, 777.0});
  EXPECT_EQ(scheduler.stale_reply_count(), 1u);
  EXPECT_EQ(scheduler.estimated_loads(), loads);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);

  // Replies from outside any active epoch (RUN) also count as stale.
  std::vector<SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    ASSERT_TRUE(d.sync_request.has_value());
    requests[d.instance] = *d.sync_request;
  }
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  scheduler.on_sync_reply({1, requests[1].epoch, 0.0});
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  scheduler.on_sync_reply({0, requests[0].epoch, 0.0});
  EXPECT_EQ(scheduler.stale_reply_count(), 2u);
}

TEST(StaleReplies, FutureEpochRepliesAreStaleToo) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  for (common::InstanceId op = 0; op < 2; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  scheduler.on_sync_reply({0, scheduler.epoch() + 5, 1.0});
  EXPECT_EQ(scheduler.stale_reply_count(), 1u);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
}

TEST(PendingReplies, TracksLiveInstancesOwingTheCurrentEpoch) {
  const auto config = test_config();
  PosgScheduler scheduler(3, config);
  EXPECT_TRUE(scheduler.pending_replies().empty());  // no epoch active
  for (common::InstanceId op = 0; op < 3; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<SyncRequest> requests(3);
  for (common::SeqNo i = 0; i < 3; ++i) {
    const Decision d = scheduler.schedule(1, i);
    requests[d.instance] = *d.sync_request;
  }
  EXPECT_EQ(scheduler.pending_replies(), (std::vector<common::InstanceId>{0, 1, 2}));
  scheduler.on_sync_reply({1, requests[1].epoch, 0.0});
  EXPECT_EQ(scheduler.pending_replies(), (std::vector<common::InstanceId>{0, 2}));
  scheduler.mark_failed(0);
  EXPECT_EQ(scheduler.pending_replies(), (std::vector<common::InstanceId>{2}));
  scheduler.on_sync_reply({2, requests[2].epoch, 0.0});
  EXPECT_TRUE(scheduler.pending_replies().empty());
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

}  // namespace
