// Tests for the lock-free SPSC ring (engine/spsc_ring.hpp): FIFO and
// close semantics mirroring BoundedQueue, index wrap-around, blocking
// backpressure, role-claim enforcement, and a two-thread stress whose
// conservation counters the TSan CI job runs race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "engine/spsc_ring.hpp"

namespace {

using posg::engine::SpscBind;
using posg::engine::SpscRing;

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  SpscBind produce(ring.producer_role());
  SpscBind consume(ring.consumer_role());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.push(i));
  }
  std::vector<int> out;
  EXPECT_EQ(ring.pop_all(out), 5u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  ring.debug_validate();
}

TEST(SpscRing, CapacityIsLogicalNotStorage) {
  // Storage rounds up to a power of two (5 -> 8) but the blocking
  // contract must honour the requested capacity.
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 5u);
  SpscBind produce(ring.producer_role());
  std::vector<int> batch{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(ring.try_push_all(batch), 5u);
  EXPECT_EQ(batch.size(), 5u);  // admitted prefix erased, suffix kept
  EXPECT_EQ(batch.front(), 5);
  EXPECT_EQ(ring.size(), 5u);
}

TEST(SpscRing, IndexWrapAroundKeepsFifo) {
  // Far more elements than storage slots: the monotonic indexes must wrap
  // through the mask without reordering or losing elements.
  SpscRing<int> ring(4);
  SpscBind produce(ring.producer_role());
  SpscBind consume(ring.consumer_role());
  int next_in = 0;
  int next_out = 0;
  std::vector<int> out;
  for (int round = 0; round < 64; ++round) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(ring.push(next_in++));
    }
    out.clear();
    EXPECT_EQ(ring.pop_all(out), 3u);
    for (int value : out) {
      EXPECT_EQ(value, next_out++);
    }
  }
  EXPECT_EQ(ring.pushed(), 192u);
  EXPECT_EQ(ring.popped(), 192u);
  ring.debug_validate();
}

TEST(SpscRing, PushAllPreservesFifoAndClearsInput) {
  SpscRing<int> ring(10);
  SpscBind produce(ring.producer_role());
  SpscBind consume(ring.consumer_role());
  std::vector<int> batch{1, 2, 3, 4};
  EXPECT_EQ(ring.push_all(batch), 4u);
  EXPECT_TRUE(batch.empty());
  std::vector<int> out{-1};  // pop_all appends, never overwrites
  EXPECT_EQ(ring.pop_all(out), 4u);
  EXPECT_EQ(out, (std::vector<int>{-1, 1, 2, 3, 4}));
  ring.debug_validate();
}

TEST(SpscRing, CloseDrainsRemainingThenSignalsEnd) {
  SpscRing<int> ring(8);
  SpscBind produce(ring.producer_role());
  SpscBind consume(ring.consumer_role());
  ring.push(1);
  ring.push(2);
  ring.close();
  std::vector<int> out;
  EXPECT_EQ(ring.pop_all(out), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));
  EXPECT_EQ(ring.pop_all(out), 0u);  // closed and drained
}

TEST(SpscRing, CloseRejectsNewPushes) {
  SpscRing<int> ring(8);
  SpscBind produce(ring.producer_role());
  ring.close();
  EXPECT_FALSE(ring.push(1));
  EXPECT_TRUE(ring.closed());
  EXPECT_EQ(ring.rejected(), 1u);
  std::vector<int> batch{1, 2, 3};
  EXPECT_EQ(ring.push_all(batch), 0u);
  EXPECT_EQ(ring.rejected(), 4u);
  ring.debug_validate();
}

TEST(SpscRing, PushBlocksWhenFullUntilConsumerFreesRoom) {
  SpscRing<int> ring(1);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    SpscBind produce(ring.producer_role());
    EXPECT_TRUE(ring.push(1));
    EXPECT_TRUE(ring.push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // backpressure: producer waits
  {
    SpscBind consume(ring.consumer_role());
    std::vector<int> out;
    EXPECT_GE(ring.pop_all(out), 1u);
    producer.join();
    EXPECT_TRUE(pushed.load());
    while (ring.size() > 0) {
      ring.pop_all(out);
    }
    EXPECT_EQ(out.back(), 2);
  }
  EXPECT_GT(ring.full_spins(), 0u);  // the waits were counted
  ring.debug_validate();
}

TEST(SpscRing, PopAllBlocksUntilPush) {
  SpscRing<int> ring(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    SpscBind consume(ring.consumer_role());
    std::vector<int> out;
    EXPECT_EQ(ring.pop_all(out), 1u);
    EXPECT_EQ(out, std::vector<int>{7});
    got = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(got.load());
  {
    SpscBind produce(ring.producer_role());
    ring.push(7);
  }
  consumer.join();
  EXPECT_TRUE(got.load());
}

TEST(SpscRing, CloseWakesBlockedConsumer) {
  SpscRing<int> ring(4);
  std::thread consumer([&] {
    SpscBind consume(ring.consumer_role());
    std::vector<int> out;
    EXPECT_EQ(ring.pop_all(out), 0u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  consumer.join();
}

TEST(SpscRing, CloseWakesBlockedProducer) {
  SpscRing<int> ring(1);
  std::thread producer([&] {
    SpscBind produce(ring.producer_role());
    EXPECT_TRUE(ring.push(1));
    EXPECT_FALSE(ring.push(2));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.close();
  producer.join();
  ring.debug_validate();
}

TEST(SpscRing, RejectsZeroCapacity) {
  EXPECT_THROW(SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRingDeath, SecondRoleClaimAborts) {
  // Two producers on an SPSC ring is corruption, not contention — the
  // runtime half of the role capability must make it a hard abort.
  SpscRing<int> ring(4);
  ring.producer_role().claim();
  EXPECT_DEATH(ring.producer_role().claim(), "second claimant");
  ring.producer_role().unclaim();
}

TEST(SpscRing, TwoThreadStressConservation) {
  // One producer thread, one consumer thread, a deliberately tiny ring so
  // both the full-wait and the empty-wait paths run constantly. The TSan
  // job runs this test; any ordering bug in the release/acquire pairs
  // shows up as a data race on the slot array.
  constexpr int kTotal = 100000;
  SpscRing<int> ring(8);
  std::thread producer([&] {
    SpscBind produce(ring.producer_role());
    std::vector<int> batch;
    for (int i = 0; i < kTotal; ++i) {
      if (i % 3 == 0) {
        // Keep the push order strictly increasing: drain the staged batch
        // before the single push so FIFO is checkable end to end.
        if (!batch.empty()) {
          const std::size_t staged = batch.size();  // push_all clears it
          EXPECT_EQ(ring.push_all(batch), staged);
        }
        EXPECT_TRUE(ring.push(i));
      } else {
        batch.push_back(i);
        if (batch.size() == 5) {
          EXPECT_EQ(ring.push_all(batch), 5u);  // push_all clears the batch
        }
      }
    }
    if (!batch.empty()) {
      const std::size_t remainder = batch.size();  // push_all clears it
      EXPECT_EQ(ring.push_all(batch), remainder);
    }
    ring.close();
  });
  std::vector<int> received;
  received.reserve(kTotal);
  {
    SpscBind consume(ring.consumer_role());
    std::vector<int> out;
    while (ring.pop_all(out) > 0) {
      received.insert(received.end(), out.begin(), out.end());
      out.clear();
    }
  }
  producer.join();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kTotal));
  // Per-source FIFO with a single source means globally ordered.
  for (int i = 0; i < kTotal; ++i) {
    ASSERT_EQ(received[static_cast<std::size_t>(i)], i);
  }
  ring.debug_validate();
  EXPECT_EQ(ring.pushed(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(ring.popped(), static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(ring.rejected(), 0u);
}

TEST(SpscRing, MoveOnlyPayloadsTransferWithoutCopy) {
  // unique_ptr payloads prove the hand-off path is move-only end to end.
  SpscRing<std::unique_ptr<int>> ring(8);
  SpscBind produce(ring.producer_role());
  SpscBind consume(ring.consumer_role());
  std::vector<std::unique_ptr<int>> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(std::make_unique<int>(i));
  }
  EXPECT_EQ(ring.push_all(batch), 4u);
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(ring.pop_all(out), 4u);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(out[static_cast<std::size_t>(i)], nullptr);
    EXPECT_EQ(*out[static_cast<std::size_t>(i)], i);
  }
}

}  // namespace
