// Tests for the network transport: framing, the wire protocol, and a full
// distributed POSG run (scheduler + instances as socket peers).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <thread>

#include "core/instance_tracker.hpp"
#include "core/posg_scheduler.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace {

using namespace posg;

std::vector<std::byte> bytes_of(const std::string& text) {
  std::vector<std::byte> out(text.size());
  if (!text.empty()) {
    std::memcpy(out.data(), text.data(), text.size());
  }
  return out;
}

TEST(Socket, FramesRoundTripOverSocketPair) {
  auto [a, b] = net::socket_pair();
  a.send_frame(bytes_of("hello"));
  a.send_frame(bytes_of(""));
  a.send_frame(bytes_of("world!"));
  EXPECT_EQ(b.recv_frame().value(), bytes_of("hello"));
  EXPECT_EQ(b.recv_frame().value(), bytes_of(""));
  EXPECT_EQ(b.recv_frame().value(), bytes_of("world!"));
}

TEST(Socket, OrderlyShutdownYieldsNullopt) {
  auto [a, b] = net::socket_pair();
  a.send_frame(bytes_of("last"));
  a.close();
  EXPECT_EQ(b.recv_frame().value(), bytes_of("last"));
  EXPECT_FALSE(b.recv_frame().has_value());
}

TEST(Socket, LargeFrameRoundTrips) {
  auto [a, b] = net::socket_pair();
  std::vector<std::byte> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::byte>(i * 31);
  }
  std::thread sender([&a, &big] { a.send_frame(big); });
  EXPECT_EQ(b.recv_frame().value(), big);
  sender.join();
}

TEST(Socket, ListenerAcceptsConnections) {
  const auto path =
      (std::filesystem::temp_directory_path() / "posg_net_test.sock").string();
  net::Listener listener(path);
  std::thread client([&path] {
    auto socket = net::connect(path);
    socket.send_frame(bytes_of("ping"));
    EXPECT_EQ(socket.recv_frame().value(), bytes_of("pong"));
  });
  auto served = listener.accept();
  EXPECT_EQ(served.recv_frame().value(), bytes_of("ping"));
  served.send_frame(bytes_of("pong"));
  client.join();
}

TEST(Protocol, AllMessageKindsRoundTrip) {
  // Hello
  {
    const auto decoded = net::decode(net::encode(net::Hello{7}));
    EXPECT_EQ(std::get<net::Hello>(decoded).instance, 7u);
  }
  // Tuple without marker
  {
    net::TupleMessage tuple;
    tuple.seq = 123;
    tuple.item = 456;
    const auto decoded = std::get<net::TupleMessage>(net::decode(net::encode(tuple)));
    EXPECT_EQ(decoded.seq, 123u);
    EXPECT_EQ(decoded.item, 456u);
    EXPECT_FALSE(decoded.marker.has_value());
  }
  // Tuple with marker
  {
    net::TupleMessage tuple;
    tuple.seq = 1;
    tuple.item = 2;
    tuple.marker = core::SyncRequest{9, 1234.5};
    const auto decoded = std::get<net::TupleMessage>(net::decode(net::encode(tuple)));
    ASSERT_TRUE(decoded.marker.has_value());
    EXPECT_EQ(decoded.marker->epoch, 9u);
    EXPECT_DOUBLE_EQ(decoded.marker->estimated_cumulated, 1234.5);
  }
  // Shipment (with a heavy-hitter table to cover the full codec)
  {
    core::PosgConfig config;
    config.window = 4;
    config.mu = 10.0;
    config.heavy_hitter_capacity = 8;
    core::InstanceTracker tracker(3, config);
    std::optional<core::SketchShipment> shipment;
    for (int i = 0; i < 100 && !shipment; ++i) {
      shipment = tracker.on_executed(i % 4, 2.0);
    }
    ASSERT_TRUE(shipment.has_value());
    const auto decoded =
        std::get<core::SketchShipment>(net::decode(net::encode(*shipment)));
    EXPECT_EQ(decoded.instance, 3u);
    EXPECT_EQ(decoded.sketch.update_count(), shipment->sketch.update_count());
    EXPECT_EQ(decoded.sketch.heavy_capacity(), 8u);
  }
  // SyncReply
  {
    const auto decoded =
        std::get<core::SyncReply>(net::decode(net::encode(core::SyncReply{2, 5, -3.5})));
    EXPECT_EQ(decoded.instance, 2u);
    EXPECT_EQ(decoded.epoch, 5u);
    EXPECT_DOUBLE_EQ(decoded.delta, -3.5);
  }
  // EndOfStream
  {
    EXPECT_TRUE(std::holds_alternative<net::EndOfStream>(
        net::decode(net::encode(net::EndOfStream{}))));
  }
  // InstanceFailed
  {
    const auto decoded =
        std::get<net::InstanceFailed>(net::decode(net::encode(net::InstanceFailed{4, 11})));
    EXPECT_EQ(decoded.instance, 4u);
    EXPECT_EQ(decoded.epoch, 11u);
  }
  // DrainRequest
  {
    const auto decoded = std::get<net::DrainRequest>(
        net::decode(net::encode(net::DrainRequest{3, 7, 512.25})));
    EXPECT_EQ(decoded.instance, 3u);
    EXPECT_EQ(decoded.epoch, 7u);
    EXPECT_DOUBLE_EQ(decoded.estimated_cumulated, 512.25);
  }
  // DrainComplete (negative delta: the cut over-estimated the real work)
  {
    const auto decoded = std::get<net::DrainComplete>(
        net::decode(net::encode(net::DrainComplete{3, 7, -12.5, 4096})));
    EXPECT_EQ(decoded.instance, 3u);
    EXPECT_EQ(decoded.epoch, 7u);
    EXPECT_DOUBLE_EQ(decoded.delta, -12.5);
    EXPECT_EQ(decoded.executed, 4096u);
  }
}

TEST(Protocol, RejectsMalformedPayloads) {
  EXPECT_THROW(net::decode({}), std::invalid_argument);
  const std::vector<std::byte> unknown_tag{std::byte{0x7F}};
  EXPECT_THROW(net::decode(unknown_tag), std::invalid_argument);
  auto truncated = net::encode(net::Hello{1});
  truncated.pop_back();
  EXPECT_THROW(net::decode(truncated), std::invalid_argument);
  auto trailing = net::encode(net::EndOfStream{});
  trailing.push_back(std::byte{0});
  EXPECT_THROW(net::decode(trailing), std::invalid_argument);
  auto short_drain = net::encode(net::DrainRequest{1, 2, 3.0});
  short_drain.pop_back();
  EXPECT_THROW(net::decode(short_drain), std::invalid_argument);
  auto long_complete = net::encode(net::DrainComplete{1, 2, 3.0, 4});
  long_complete.push_back(std::byte{0xAB});
  EXPECT_THROW(net::decode(long_complete), std::invalid_argument);
}

/// Full distributed run: one scheduler, two operator-instance peers, real
/// sockets, the complete POSG protocol (shipments, markers, replies).
TEST(DistributedPosg, ProtocolCompletesOverSockets) {
  const std::size_t k = 2;
  core::PosgConfig config;
  config.window = 32;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;

  std::vector<std::pair<net::Socket, net::Socket>> links;
  for (std::size_t i = 0; i < k; ++i) {
    links.push_back(net::socket_pair());
  }

  // Instance peers: execute tuples (simulated cost), track, ship, reply.
  std::vector<std::thread> instances;
  std::vector<std::uint64_t> executed(k, 0);
  for (common::InstanceId op = 0; op < k; ++op) {
    instances.emplace_back([&, op] {
      net::Socket& socket = links[op].second;
      core::InstanceTracker tracker(op, config);
      while (auto frame = socket.recv_frame()) {
        const auto message = net::decode(*frame);
        if (std::holds_alternative<net::EndOfStream>(message)) {
          break;
        }
        const auto& tuple = std::get<net::TupleMessage>(message);
        const common::TimeMs cost = 1.0 + static_cast<double>(tuple.item % 8);
        if (auto shipment = tracker.on_executed(tuple.item, cost)) {
          socket.send_frame(net::encode(*shipment));
        }
        if (tuple.marker) {
          socket.send_frame(net::encode(tracker.on_sync_request(*tuple.marker)));
        }
        ++executed[op];
      }
      socket.close();
    });
  }

  // Scheduler: route 5000 tuples; a reader thread per instance feeds the
  // control messages back.
  core::PosgScheduler scheduler(k, config);
  std::mutex scheduler_mutex;
  std::atomic<std::uint64_t> replies{0};
  std::vector<std::thread> readers;
  for (common::InstanceId op = 0; op < k; ++op) {
    readers.emplace_back([&, op] {
      net::Socket& socket = links[op].first;
      // NOTE: recv on the same socket the scheduler sends on is safe —
      // Unix stream sockets are full-duplex.
      while (true) {
        std::optional<std::vector<std::byte>> frame;
        try {
          frame = socket.recv_frame();
        } catch (const std::exception&) {
          break;
        }
        if (!frame) {
          break;
        }
        const auto message = net::decode(*frame);
        std::lock_guard lock(scheduler_mutex);
        if (const auto* shipment = std::get_if<core::SketchShipment>(&message)) {
          scheduler.on_sketches(*shipment);
        } else if (const auto* reply = std::get_if<core::SyncReply>(&message)) {
          scheduler.on_sync_reply(*reply);
          replies.fetch_add(1);
        }
      }
    });
  }

  for (common::SeqNo seq = 0; seq < 5000; ++seq) {
    net::TupleMessage tuple;
    tuple.seq = seq;
    tuple.item = (seq * 37) % 64;
    core::Decision decision;
    {
      std::lock_guard lock(scheduler_mutex);
      decision = scheduler.schedule(tuple.item, seq);
    }
    tuple.marker = decision.sync_request;
    links[decision.instance].first.send_frame(net::encode(tuple));
  }
  for (common::InstanceId op = 0; op < k; ++op) {
    links[op].first.send_frame(net::encode(net::EndOfStream{}));
  }
  for (auto& thread : instances) {
    thread.join();
  }
  for (auto& thread : readers) {
    thread.join();
  }

  EXPECT_EQ(executed[0] + executed[1], 5000u);
  EXPECT_GT(replies.load(), 0u);
  std::lock_guard lock(scheduler_mutex);
  EXPECT_NE(scheduler.state(), core::PosgScheduler::State::kRoundRobin);
}

}  // namespace
