// Tests for the Space-Saving heavy-hitter tracker and the hybrid
// (exact-head + sketch-tail) estimator built on it.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "sketch/dual_sketch.hpp"
#include "sketch/serialize.hpp"
#include "sketch/space_saving.hpp"
#include "workload/distributions.hpp"

namespace {

using namespace posg;
using sketch::DualSketch;
using sketch::SketchDims;
using sketch::SpaceSaving;

TEST(SpaceSaving, TracksWithinCapacityExactly) {
  SpaceSaving tracker(4);
  for (int i = 0; i < 3; ++i) {
    tracker.update(7, 2.0);
  }
  tracker.update(9, 5.0);
  ASSERT_EQ(tracker.size(), 2u);
  const auto seven = tracker.lookup(7);
  ASSERT_TRUE(seven.has_value());
  EXPECT_EQ(seven->count, 3u);
  EXPECT_EQ(seven->error, 0u);
  EXPECT_EQ(seven->observed, 3u);
  EXPECT_DOUBLE_EQ(seven->time_sum, 6.0);
  EXPECT_FALSE(tracker.lookup(42).has_value());
}

TEST(SpaceSaving, TakeoverInheritsMinimumCount) {
  SpaceSaving tracker(2);
  tracker.update(1, 1.0);
  tracker.update(1, 1.0);
  tracker.update(2, 1.0);
  // Table full {1:2, 2:1}; item 3 takes over item 2's slot.
  tracker.update(3, 9.0);
  EXPECT_FALSE(tracker.lookup(2).has_value());
  const auto three = tracker.lookup(3);
  ASSERT_TRUE(three.has_value());
  EXPECT_EQ(three->count, 2u);   // 1 (inherited) + 1
  EXPECT_EQ(three->error, 1u);
  EXPECT_EQ(three->observed, 1u);
  EXPECT_DOUBLE_EQ(three->time_sum, 9.0);
}

TEST(SpaceSaving, CountNeverUnderestimates) {
  SpaceSaving tracker(8);
  common::Xoshiro256StarStar rng(3);
  std::vector<std::uint64_t> truth(64, 0);
  for (int i = 0; i < 20'000; ++i) {
    const common::Item item = rng.next_below(64);
    tracker.update(item, 1.0);
    ++truth[item];
  }
  for (common::Item item = 0; item < 64; ++item) {
    if (auto entry = tracker.lookup(item)) {
      EXPECT_GE(entry->count, truth[item]);
      EXPECT_LE(entry->count - entry->error, truth[item]);
    }
  }
}

TEST(SpaceSaving, GuaranteesHeavyHittersAreMonitored) {
  // Classic guarantee: every item with frequency > m / capacity is in the
  // table at the end.
  const std::size_t capacity = 16;
  SpaceSaving tracker(capacity);
  workload::ZipfItems zipf(1024, 1.2);
  common::Xoshiro256StarStar rng(17);
  const int m = 50'000;
  std::vector<std::uint64_t> truth(1024, 0);
  for (int i = 0; i < m; ++i) {
    const common::Item item = zipf.sample(rng);
    tracker.update(item, 1.0);
    ++truth[item];
  }
  for (common::Item item = 0; item < 1024; ++item) {
    if (truth[item] > m / capacity) {
      EXPECT_TRUE(tracker.lookup(item).has_value()) << "heavy item " << item << " evicted";
    }
  }
}

TEST(SpaceSaving, MeanTimeUsesOnlyObservedSamples) {
  SpaceSaving tracker(1);
  tracker.update(1, 10.0);
  tracker.update(2, 99.0);  // takes over; inherits count 1 but not the 10.0
  tracker.update(2, 101.0);
  tracker.update(2, 100.0);
  tracker.update(2, 100.0);
  const auto mean = tracker.mean_time(2, 4);
  ASSERT_TRUE(mean.has_value());
  EXPECT_DOUBLE_EQ(*mean, 100.0);
  // Below the min_observed threshold: no estimate.
  EXPECT_FALSE(tracker.mean_time(2, 5).has_value());
}

TEST(SpaceSaving, ClearAndRestoreRoundTrip) {
  SpaceSaving tracker(4);
  tracker.update(1, 2.0);
  tracker.update(1, 4.0);
  tracker.update(9, 7.0);
  SpaceSaving copy(4);
  copy.restore(tracker.entries());
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean_time(1, 1).value(), 3.0);
  copy.clear();
  EXPECT_EQ(copy.size(), 0u);
  SpaceSaving small(1);
  EXPECT_THROW(small.restore(tracker.entries()), std::invalid_argument);
}

TEST(HybridEstimator, HeavyItemsAreExactDespiteCoarseSketch) {
  // A 1-column sketch is pure mush; with the heavy table the frequent
  // item still gets its exact mean.
  DualSketch hybrid(SketchDims{2, 1}, 5, /*heavy_capacity=*/4);
  for (int i = 0; i < 100; ++i) {
    hybrid.update(7, 10.0);
    hybrid.update(static_cast<common::Item>(100 + i % 3), 1.0);
  }
  const auto heavy = hybrid.estimate(7);
  ASSERT_TRUE(heavy.has_value());
  EXPECT_DOUBLE_EQ(*heavy, 10.0);

  DualSketch plain(SketchDims{2, 1}, 5);
  for (int i = 0; i < 100; ++i) {
    plain.update(7, 10.0);
    plain.update(static_cast<common::Item>(100 + i % 3), 1.0);
  }
  const auto mush = plain.estimate(7);
  ASSERT_TRUE(mush.has_value());
  EXPECT_NEAR(*mush, 5.5, 0.1);  // everything collides: global mean
}

TEST(HybridEstimator, MergePreservesHeavyInformation) {
  DualSketch a(SketchDims{2, 8}, 5, 4);
  DualSketch b(SketchDims{2, 8}, 5, 4);
  for (int i = 0; i < 10; ++i) {
    a.update(1, 4.0);
    b.update(1, 6.0);
  }
  a.merge_from(b);
  const auto merged = a.estimate(1);
  ASSERT_TRUE(merged.has_value());
  EXPECT_DOUBLE_EQ(*merged, 5.0);  // (10*4 + 10*6) / 20
  EXPECT_EQ(a.update_count(), 20u);

  DualSketch mismatched(SketchDims{2, 8}, 5, 8);
  EXPECT_THROW(a.merge_from(mismatched), std::invalid_argument);
}

TEST(HybridEstimator, SerializationCarriesTheHeavyTable) {
  DualSketch sketch(SketchDims{4, 54}, 99, 16);
  common::Xoshiro256StarStar rng(8);
  for (int i = 0; i < 5000; ++i) {
    const common::Item item = rng.next_below(256);
    sketch.update(item, 1.0 + static_cast<double>(item % 8));
  }
  const auto bytes = sketch::serialize(sketch);
  EXPECT_EQ(bytes.size(),
            sketch::serialized_size(sketch.dims(), sketch.heavy_hitters()->size()));
  const DualSketch restored = sketch::deserialize(bytes);
  EXPECT_EQ(restored.heavy_capacity(), 16u);
  ASSERT_NE(restored.heavy_hitters(), nullptr);
  EXPECT_EQ(restored.heavy_hitters()->size(), sketch.heavy_hitters()->size());
  for (const auto& [item, entry] : sketch.heavy_hitters()->entries()) {
    const auto restored_entry = restored.heavy_hitters()->lookup(item);
    ASSERT_TRUE(restored_entry.has_value());
    EXPECT_EQ(restored_entry->count, entry.count);
    EXPECT_DOUBLE_EQ(restored_entry->time_sum, entry.time_sum);
  }
}

TEST(HybridEstimator, ResetClearsTheHeavyTable) {
  DualSketch sketch(SketchDims{2, 8}, 5, 4);
  sketch.update(1, 5.0);
  sketch.reset();
  EXPECT_EQ(sketch.heavy_hitters()->size(), 0u);
  EXPECT_FALSE(sketch.estimate(1).has_value());
}

}  // namespace
