// Unit + property tests for the Count-Min sketch, the dual (F, W) sketch,
// the stability snapshot, and the wire codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/prng.hpp"
#include "sketch/count_min.hpp"
#include "sketch/dual_sketch.hpp"
#include "sketch/serialize.hpp"
#include "sketch/snapshot.hpp"

namespace {

using namespace posg;
using sketch::CountMin;
using sketch::DualSketch;
using sketch::EstimatorVariant;
using sketch::SketchDims;
using sketch::Snapshot;

TEST(SketchDims, MatchesPaperExamples) {
  // Fig. 1: delta = 0.25 -> r = 2, eps = 0.70 -> c = 4.
  const auto fig1 = SketchDims::from_accuracy(0.70, 0.25);
  EXPECT_EQ(fig1.rows, 2u);
  EXPECT_EQ(fig1.cols, 4u);
  // Sec. V-A: delta = 0.1 -> r = 4, eps = 0.05 -> c = 54.
  const auto defaults = SketchDims::from_accuracy(0.05, 0.1);
  EXPECT_EQ(defaults.rows, 4u);
  EXPECT_EQ(defaults.cols, 54u);
}

TEST(SketchDims, RejectsOutOfRangeParameters) {
  EXPECT_THROW(SketchDims::from_accuracy(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(SketchDims::from_accuracy(1.5, 0.1), std::invalid_argument);
  EXPECT_THROW(SketchDims::from_accuracy(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(SketchDims::from_accuracy(0.1, 1.0), std::invalid_argument);
}

TEST(CountMin, ExactWhenNoCollisions) {
  // Universe smaller than the column count: with 4 rows the min over rows
  // is exact with overwhelming probability for any fixed small universe.
  CountMin<std::uint64_t> cm(SketchDims{4, 1024}, 42);
  for (common::Item x = 0; x < 8; ++x) {
    for (common::Item reps = 0; reps <= x; ++reps) {
      cm.update(x, 1);
    }
  }
  for (common::Item x = 0; x < 8; ++x) {
    EXPECT_EQ(cm.estimate(x), x + 1);
  }
}

TEST(CountMin, NeverUnderestimates) {
  CountMin<std::uint64_t> cm(SketchDims{4, 8}, 7);  // tiny: heavy collisions
  std::map<common::Item, std::uint64_t> truth;
  common::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 5000; ++i) {
    const common::Item x = rng.next_below(256);
    cm.update(x, 1);
    ++truth[x];
  }
  for (const auto& [item, freq] : truth) {
    EXPECT_GE(cm.estimate(item), freq);
  }
}

TEST(CountMin, RowTotalsEqualInsertedMass) {
  CountMin<std::uint64_t> cm(SketchDims{3, 16}, 1);
  for (int i = 0; i < 100; ++i) {
    cm.update(static_cast<common::Item>(i % 11), 2);
  }
  for (std::size_t row = 0; row < 3; ++row) {
    EXPECT_EQ(cm.row_total(row), 200u);
  }
}

TEST(CountMin, ResetZeroesEverything) {
  CountMin<double> cm(SketchDims{2, 4}, 9);
  cm.update(3, 1.5);
  cm.reset();
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_DOUBLE_EQ(cm.row_total(r), 0.0);
  }
}

TEST(CountMin, MergeIsLinear) {
  CountMin<std::uint64_t> a(SketchDims{4, 16}, 5);
  CountMin<std::uint64_t> b(SketchDims{4, 16}, 5);
  CountMin<std::uint64_t> both(SketchDims{4, 16}, 5);
  for (int i = 0; i < 500; ++i) {
    const common::Item x = i % 37;
    if (i % 2 == 0) {
      a.update(x, 1);
    } else {
      b.update(x, 1);
    }
    both.update(x, 1);
  }
  a.merge(b);
  for (common::Item x = 0; x < 37; ++x) {
    EXPECT_EQ(a.estimate(x), both.estimate(x));
  }
}

TEST(CountMin, MergeRejectsMismatchedLayouts) {
  CountMin<std::uint64_t> a(SketchDims{4, 16}, 5);
  CountMin<std::uint64_t> different_seed(SketchDims{4, 16}, 6);
  CountMin<std::uint64_t> different_dims(SketchDims{4, 32}, 5);
  EXPECT_THROW(a.merge(different_seed), std::invalid_argument);
  EXPECT_THROW(a.merge(different_dims), std::invalid_argument);
}

/// Property (Cormode & Muthukrishnan): Pr{ f̂ - f >= eps (m - f) } <= delta.
/// Checked empirically over independent sketch seeds, parameterized on
/// (eps, delta).
class CountMinAccuracy
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(CountMinAccuracy, AdditiveErrorBoundHolds) {
  const auto [eps, delta] = GetParam();
  const std::size_t n = 256;
  const std::size_t m = 4096;
  common::Xoshiro256StarStar stream_rng(11);
  std::vector<common::Item> stream(m);
  std::vector<std::uint64_t> truth(n, 0);
  for (auto& x : stream) {
    x = stream_rng.next_below(n);
    ++truth[x];
  }
  int violations = 0;
  int queries = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    CountMin<std::uint64_t> cm(eps, delta, 1000 + t);
    for (common::Item x : stream) {
      cm.update(x, 1);
    }
    for (common::Item v = 0; v < n; ++v) {
      ++queries;
      const double bound = eps * static_cast<double>(m - truth[v]);
      violations += static_cast<double>(cm.estimate(v) - truth[v]) > bound;
    }
  }
  const double rate = static_cast<double>(violations) / queries;
  // The bound is delta per query; allow sampling slack.
  EXPECT_LE(rate, delta + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Accuracy, CountMinAccuracy,
                         ::testing::Values(std::pair{0.05, 0.1}, std::pair{0.1, 0.1},
                                           std::pair{0.05, 0.25}, std::pair{0.2, 0.05}));

TEST(CountMin, ConservativeUpdateNeverUnderestimates) {
  CountMin<std::uint64_t> cm(SketchDims{4, 8}, 7);
  std::map<common::Item, std::uint64_t> truth;
  common::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 5000; ++i) {
    const common::Item x = rng.next_below(256);
    cm.update_conservative(x, 1);
    ++truth[x];
  }
  for (const auto& [item, freq] : truth) {
    EXPECT_GE(cm.estimate(item), freq);
  }
}

TEST(CountMin, ConservativeUpdateTightensEstimates) {
  // Same skewed stream through both update rules: conservative estimates
  // are never larger, and strictly smaller in aggregate.
  CountMin<std::uint64_t> standard(SketchDims{4, 16}, 7);
  CountMin<std::uint64_t> conservative(SketchDims{4, 16}, 7);
  common::Xoshiro256StarStar rng(5);
  for (int i = 0; i < 20'000; ++i) {
    // Zipf-ish skew via modulo trick.
    const common::Item x = rng.next_below(1 + rng.next_below(256));
    standard.update(x, 1);
    conservative.update_conservative(x, 1);
  }
  std::uint64_t standard_sum = 0;
  std::uint64_t conservative_sum = 0;
  for (common::Item x = 0; x < 256; ++x) {
    EXPECT_LE(conservative.estimate(x), standard.estimate(x));
    standard_sum += standard.estimate(x);
    conservative_sum += conservative.estimate(x);
  }
  EXPECT_LT(conservative_sum, standard_sum);
}

TEST(DualSketch, ConservativeModeKeepsRatiosMeaningful) {
  // One heavy item and colliding tail: the conservative dual sketch's
  // estimate for the heavy item is at least as accurate as the standard
  // one's on this construction, and exact when collisions are absent.
  DualSketch conservative(SketchDims{4, 1024}, 21, 0, true);
  for (int i = 0; i < 100; ++i) {
    conservative.update(5, 10.0);
  }
  EXPECT_DOUBLE_EQ(conservative.estimate(5).value(), 10.0);
  EXPECT_TRUE(conservative.conservative());
}

TEST(DualSketch, ConservativeSerializesAndMergesOnlyWithItself) {
  DualSketch a(SketchDims{2, 8}, 5, 0, true);
  a.update(1, 3.0);
  const auto bytes = serialize(a);
  const auto restored = sketch::deserialize(bytes);
  EXPECT_TRUE(restored.conservative());
  DualSketch standard(SketchDims{2, 8}, 5, 0, false);
  EXPECT_THROW(a.merge_from(standard), std::invalid_argument);
}

TEST(DualSketch, TracksFrequenciesAndWeightsTogether) {
  DualSketch ds(SketchDims{4, 512}, 21);
  ds.update(5, 10.0);
  ds.update(5, 20.0);
  ds.update(9, 7.0);
  EXPECT_EQ(ds.update_count(), 3u);
  EXPECT_DOUBLE_EQ(ds.total_execution_time(), 37.0);
  const auto w5 = ds.estimate(5);
  ASSERT_TRUE(w5.has_value());
  EXPECT_DOUBLE_EQ(*w5, 15.0);  // (10+20)/2
  const auto w9 = ds.estimate(9);
  ASSERT_TRUE(w9.has_value());
  EXPECT_DOUBLE_EQ(*w9, 7.0);
}

TEST(DualSketch, UnseenItemHasNoEstimate) {
  DualSketch ds(SketchDims{4, 512}, 21);
  ds.update(5, 10.0);
  // With 512 columns and 1 occupied cell per row, a random other item has
  // ~ (1/512)^4 probability of mapping to occupied cells in all rows; item
  // 123456 is deterministic for the fixed seed, verify it's unseen.
  EXPECT_FALSE(ds.estimate(123456).has_value());
}

TEST(DualSketch, MeanExecutionTime) {
  DualSketch ds(SketchDims{2, 8}, 3);
  EXPECT_FALSE(ds.mean_execution_time().has_value());
  ds.update(1, 4.0);
  ds.update(2, 8.0);
  EXPECT_DOUBLE_EQ(ds.mean_execution_time().value(), 6.0);
}

TEST(DualSketch, MinRatioVariantIsNotAboveArgMinFrequency) {
  // Build collisions deliberately with a tiny sketch: the min-ratio
  // estimate is by construction <= the ratio at the argmin-F cell of any
  // single sketch state? Not in general — but both must be within
  // [min ratio, max ratio] over the item's cells. Here we just verify
  // the variants agree on a collision-free sketch.
  DualSketch ds(SketchDims{4, 1024}, 77);
  ds.update(10, 3.0);
  ds.update(10, 5.0);
  EXPECT_DOUBLE_EQ(ds.estimate(10, EstimatorVariant::kArgMinFrequency).value(), 4.0);
  EXPECT_DOUBLE_EQ(ds.estimate(10, EstimatorVariant::kMinRatio).value(), 4.0);
}

TEST(DualSketch, ResetClearsTotals) {
  DualSketch ds(SketchDims{2, 8}, 3);
  ds.update(1, 4.0);
  ds.reset();
  EXPECT_EQ(ds.update_count(), 0u);
  EXPECT_DOUBLE_EQ(ds.total_execution_time(), 0.0);
  EXPECT_FALSE(ds.estimate(1).has_value());
}

TEST(Snapshot, RelativeErrorZeroWhenUnchanged) {
  DualSketch ds(SketchDims{2, 16}, 4);
  ds.update(1, 10.0);
  ds.update(2, 20.0);
  Snapshot snap(ds);
  EXPECT_DOUBLE_EQ(snap.relative_error(ds), 0.0);
}

TEST(Snapshot, RelativeErrorZeroWhenRatiosUnchanged) {
  // Doubling every item's occurrences keeps all W/F ratios identical.
  DualSketch ds(SketchDims{2, 16}, 4);
  ds.update(1, 10.0);
  ds.update(2, 20.0);
  Snapshot snap(ds);
  ds.update(1, 10.0);
  ds.update(2, 20.0);
  EXPECT_NEAR(snap.relative_error(ds), 0.0, 1e-12);
}

TEST(Snapshot, DetectsRatioShift) {
  DualSketch ds(SketchDims{1, 64}, 4);
  ds.update(1, 10.0);
  Snapshot snap(ds);
  ds.update(1, 30.0);  // ratio of item 1's cell moves from 10 to 20
  EXPECT_NEAR(snap.relative_error(ds), 1.0, 1e-12);  // |10-20| / 10
}

TEST(Snapshot, IgnoresCellsEmptyAtSnapshotTime) {
  // See DESIGN.md §5: cells that were empty in the snapshot are excluded,
  // otherwise the item tail would keep eta above any tolerance forever.
  DualSketch ds(SketchDims{1, 64}, 4);
  ds.update(1, 10.0);
  Snapshot snap(ds);
  ds.update(2, 50.0);  // new cell (with high probability) — excluded
  EXPECT_NEAR(snap.relative_error(ds), 0.0, 1e-12);
}

TEST(Snapshot, EmptySnapshotAgainstNonEmptySketchIsInfinite) {
  DualSketch ds(SketchDims{1, 8}, 4);
  Snapshot snap(ds);
  EXPECT_DOUBLE_EQ(snap.relative_error(ds), 0.0);
  ds.update(1, 5.0);
  EXPECT_TRUE(std::isinf(snap.relative_error(ds)));
}

TEST(Snapshot, CaptureTouchedBitIdenticalToFullCapture) {
  // The tracker's incremental capture must leave the exact ratio matrix a
  // full capture() produces — ASSERT_EQ, not NEAR: the goldens depend on
  // bit-identical ship timing. Exercised across several epochs, each with
  // a full refresh pass in between (the tracker's STABILIZING windows), so
  // the "ratios current for every unlisted cell" precondition is covered
  // both from reset_zero and from a prior full pass.
  const SketchDims dims{3, 29};
  DualSketch ds(dims, 77);
  Snapshot full;
  Snapshot fast;
  common::Xoshiro256StarStar rng(21);
  for (int epoch = 0; epoch < 6; ++epoch) {
    ds.reset();
    full.reset_zero(dims);
    fast.reset_zero(dims);
    std::vector<std::uint32_t> touched;
    // Skewed items so offsets repeat within the log (idempotent stores).
    for (int i = 0; i < 40; ++i) {
      const common::Item item = rng.next_below(epoch % 2 == 0 ? 8 : 256);
      const auto digest = ds.digest(item);
      ds.update(item, digest, 1.0 + static_cast<double>(rng.next_below(50)));
      for (std::size_t row = 0; row < dims.rows; ++row) {
        touched.push_back(static_cast<std::uint32_t>(digest.offset(row)));
      }
    }
    full.capture(ds);
    fast.capture_touched(ds, touched.data(), touched.size());
    touched.clear();
    for (std::size_t r = 0; r < dims.rows; ++r) {
      for (std::size_t c = 0; c < dims.cols; ++c) {
        ASSERT_EQ(fast.cell(r, c), full.cell(r, c)) << "epoch " << epoch;
      }
    }
    // A stabilizing window: both sides refresh in full, then a second
    // touched log layered on the refreshed matrix must still agree.
    for (int i = 0; i < 40; ++i) {
      ds.update(rng.next_below(256), 1.0 + static_cast<double>(rng.next_below(50)));
    }
    EXPECT_EQ(fast.refresh_and_error(ds), full.refresh_and_error(ds)) << "epoch " << epoch;
    for (int i = 0; i < 40; ++i) {
      const common::Item item = rng.next_below(256);
      const auto digest = ds.digest(item);
      ds.update(item, digest, 1.0 + static_cast<double>(rng.next_below(50)));
      for (std::size_t row = 0; row < dims.rows; ++row) {
        touched.push_back(static_cast<std::uint32_t>(digest.offset(row)));
      }
    }
    full.capture(ds);
    fast.capture_touched(ds, touched.data(), touched.size());
    for (std::size_t r = 0; r < dims.rows; ++r) {
      for (std::size_t c = 0; c < dims.cols; ++c) {
        ASSERT_EQ(fast.cell(r, c), full.cell(r, c)) << "epoch " << epoch << " post-refresh";
      }
    }
  }
}

TEST(Serialize, RoundTripsExactly) {
  DualSketch ds(SketchDims{4, 54}, 1234);
  common::Xoshiro256StarStar rng(8);
  for (int i = 0; i < 2000; ++i) {
    ds.update(rng.next_below(4096), 1.0 + static_cast<double>(rng.next_below(64)));
  }
  const auto bytes = serialize(ds);
  EXPECT_EQ(bytes.size(), sketch::serialized_size(ds.dims()));
  const DualSketch restored = sketch::deserialize(bytes);
  EXPECT_EQ(restored.update_count(), ds.update_count());
  EXPECT_DOUBLE_EQ(restored.total_execution_time(), ds.total_execution_time());
  for (common::Item x = 0; x < 4096; x += 17) {
    EXPECT_EQ(restored.estimate(x).has_value(), ds.estimate(x).has_value());
    if (ds.estimate(x)) {
      EXPECT_DOUBLE_EQ(*restored.estimate(x), *ds.estimate(x));
    }
  }
}

TEST(Serialize, RejectsTruncatedBuffer) {
  DualSketch ds(SketchDims{2, 8}, 5);
  ds.update(1, 2.0);
  auto bytes = serialize(ds);
  bytes.pop_back();
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

TEST(Serialize, RejectsBadMagic) {
  DualSketch ds(SketchDims{2, 8}, 5);
  auto bytes = serialize(ds);
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

TEST(Serialize, RejectsTrailingGarbage) {
  DualSketch ds(SketchDims{2, 8}, 5);
  auto bytes = serialize(ds);
  bytes.push_back(std::byte{0x42});
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

// Gray-fault corruption XORs one byte of an otherwise valid frame, which
// keeps the buffer structurally parseable while breaking the Count-Min
// mass identities. Deserialize must reject the *content* (so the runtime
// quarantines the peer) rather than hand a poisoned sketch to the
// scheduler, whose own debug_validate would abort the process.
TEST(Serialize, RejectsCorruptedUpdateCountByte) {
  DualSketch ds(SketchDims{2, 8}, 5);
  ds.update(1, 2.0);
  auto bytes = serialize(ds);
  // Layout: magic(4) + version(4) + seed(8) + rows(8) + cols(8) = 32, then
  // the u64 update count; flip a high byte so the total no longer matches
  // any F row sum.
  bytes[32 + 5] ^= std::byte{0x5E};
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

TEST(Serialize, RejectsCorruptedFrequencyCellByte) {
  DualSketch ds(SketchDims{2, 8}, 5);
  ds.update(1, 2.0);
  auto bytes = serialize(ds);
  // F cells start after the 56-byte fixed header; breaking any one cell
  // breaks that row's total-vs-update-count identity.
  bytes[56] ^= std::byte{0x01};
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

TEST(Serialize, RejectsNegativeWeightCell) {
  DualSketch ds(SketchDims{2, 8}, 5);
  ds.update(1, 2.0);
  auto bytes = serialize(ds);
  // Flip the sign bit of every W cell's top byte: at least one non-zero
  // cell goes negative (the zero cells stay -0.0 == 0.0, so the row-total
  // check alone would miss a sign flip on a zero).
  const std::size_t w_begin = 56 + 2 * 8 * sizeof(std::uint64_t);
  for (std::size_t cell = 0; cell < 2 * 8; ++cell) {
    bytes[w_begin + cell * sizeof(double) + 7] ^= std::byte{0x80};
  }
  EXPECT_THROW(sketch::deserialize(bytes), std::invalid_argument);
}

}  // namespace
