// Tests of the graceful-degradation layer: the HealthMonitor straggler
// state machine, the OverloadController watermark hysteresis, de-rated
// billing shares, the rejoin admission ramp, stale-Δ isolation after a
// rejoin, and load-shedding conservation in the engine. The deterministic
// full-arc test (slowed → de-rated → quarantined → rejoined → ramped back
// to fair share) is the core-level counterpart of runtime_test.cpp's
// wire-level rejoin arc.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <vector>

#include "core/instance_health.hpp"
#include "core/instance_tracker.hpp"
#include "core/overload.hpp"
#include "core/posg_scheduler.hpp"
#include "engine/builtin.hpp"
#include "engine/engine.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace posg;
using core::Decision;
using core::HealthConfig;
using core::HealthMonitor;
using core::InstanceHealth;
using core::InstanceTracker;
using core::OverloadConfig;
using core::OverloadController;
using core::PosgConfig;
using core::PosgScheduler;
using core::SyncRequest;

PosgConfig test_config() {
  PosgConfig config;
  config.window = 4;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  return config;
}

core::SketchShipment make_shipment(common::InstanceId op, const PosgConfig& config,
                                   common::Item item = 1, common::TimeMs cost = 2.0) {
  InstanceTracker tracker(op, config);
  for (int i = 0; i < 1000; ++i) {
    if (auto shipment = tracker.on_executed(item, cost)) {
      return *shipment;
    }
  }
  throw std::logic_error("make_shipment: tracker never stabilized");
}

// ---------------------------------------------------------------------------
// HealthMonitor: the Live/Suspect/Degraded/Quarantined state machine.
// ---------------------------------------------------------------------------

TEST(HealthMonitor, DriftLadderDegradesAndRepromotesWithHysteresis) {
  HealthMonitor monitor(2, HealthConfig{});  // degrade_epochs = promote_epochs = 2

  EXPECT_EQ(monitor.state(0), InstanceHealth::kLive);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);

  // One hot epoch: Suspect, but no de-rate yet (only Degraded bills extra).
  monitor.on_epoch_drift(0, 2.5);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kSuspect);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);

  // Second consecutive hot epoch: Degraded, de-rate = smoothed drift
  // (EWMA alpha 0.5 over 1.0, 2.5, 2.5).
  monitor.on_epoch_drift(0, 2.5);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kDegraded);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 2.125);

  // One calm epoch is not enough (hysteresis): still Degraded, de-rate
  // decays with the EWMA.
  monitor.on_epoch_drift(0, 1.0);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kDegraded);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.5625);

  // Second calm epoch: re-promoted, billing restored to exactly 1.0.
  monitor.on_epoch_drift(0, 1.0);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kLive);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);

  // The other instance never moved.
  EXPECT_EQ(monitor.state(1), InstanceHealth::kLive);
  EXPECT_EQ(monitor.suspect_transitions(), 1u);
  EXPECT_EQ(monitor.degraded_transitions(), 1u);
  EXPECT_EQ(monitor.promotions(), 1u);
  monitor.debug_validate();
}

TEST(HealthMonitor, SuspectRecoversWithoutDegrading) {
  HealthMonitor monitor(1, HealthConfig{});
  monitor.on_epoch_drift(0, 1.6);  // >= suspect_drift, < degrade_drift
  EXPECT_EQ(monitor.state(0), InstanceHealth::kSuspect);
  monitor.on_epoch_drift(0, 1.0);  // one calm epoch clears a mere suspicion
  EXPECT_EQ(monitor.state(0), InstanceHealth::kLive);
  EXPECT_EQ(monitor.suspect_transitions(), 1u);
  EXPECT_EQ(monitor.degraded_transitions(), 0u);
  EXPECT_EQ(monitor.promotions(), 1u);
}

TEST(HealthMonitor, AmbiguousDriftResetsTheCalmStreak) {
  HealthMonitor monitor(1, HealthConfig{});
  monitor.on_epoch_drift(0, 2.5);
  monitor.on_epoch_drift(0, 2.5);
  ASSERT_EQ(monitor.state(0), InstanceHealth::kDegraded);

  monitor.on_epoch_drift(0, 1.0);  // calm streak 1
  monitor.on_epoch_drift(0, 1.3);  // between promote (1.2) and suspect (1.5): resets the streak
  EXPECT_EQ(monitor.state(0), InstanceHealth::kDegraded);
  monitor.on_epoch_drift(0, 1.0);  // calm streak 1 again — still not enough
  EXPECT_EQ(monitor.state(0), InstanceHealth::kDegraded);
  monitor.on_epoch_drift(0, 1.0);  // calm streak 2: promoted
  EXPECT_EQ(monitor.state(0), InstanceHealth::kLive);
  EXPECT_EQ(monitor.promotions(), 1u);
}

TEST(HealthMonitor, StaleFeedbackAndQueueSkewRaiseSuspicion) {
  HealthMonitor stale(2, HealthConfig{});
  stale.note_stale_feedback(1);
  EXPECT_EQ(stale.state(1), InstanceHealth::kSuspect);
  EXPECT_EQ(stale.state(0), InstanceHealth::kLive);
  EXPECT_EQ(stale.suspect_transitions(), 1u);

  // Queue skew: one instance at 0.9 occupancy against a 0.1 cluster
  // background exceeds both the skew multiple and the absolute floor.
  HealthMonitor skew(3, HealthConfig{});
  skew.note_queue_depth(1, 0.1);
  skew.note_queue_depth(2, 0.1);
  skew.note_queue_depth(0, 0.9);
  EXPECT_EQ(skew.state(0), InstanceHealth::kSuspect);
  EXPECT_EQ(skew.state(1), InstanceHealth::kLive);

  // A skewed-but-shallow queue (below queue_floor) is not a signal.
  HealthMonitor shallow(3, HealthConfig{});
  shallow.note_queue_depth(1, 0.01);
  shallow.note_queue_depth(2, 0.01);
  shallow.note_queue_depth(0, 0.2);
  EXPECT_EQ(shallow.state(0), InstanceHealth::kLive);

  // Master switch off: every signal is inert.
  HealthConfig off;
  off.enabled = false;
  HealthMonitor disabled(2, off);
  disabled.note_stale_feedback(0);
  disabled.on_epoch_drift(0, 100.0);
  EXPECT_EQ(disabled.state(0), InstanceHealth::kLive);
  EXPECT_DOUBLE_EQ(disabled.derate(0), 1.0);
}

TEST(HealthMonitor, QuarantineFreezesAndRejoinResets) {
  HealthMonitor monitor(2, HealthConfig{});
  monitor.on_epoch_drift(0, 2.5);
  monitor.on_epoch_drift(0, 2.5);
  ASSERT_EQ(monitor.state(0), InstanceHealth::kDegraded);
  ASSERT_GT(monitor.derate(0), 1.0);

  monitor.on_quarantined(0);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kQuarantined);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);  // quarantined instances are not billed at all
  monitor.on_epoch_drift(0, 5.0);            // late drift for a quarantined id is ignored
  EXPECT_EQ(monitor.state(0), InstanceHealth::kQuarantined);

  monitor.on_rejoined(0);
  EXPECT_EQ(monitor.state(0), InstanceHealth::kLive);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);
  monitor.debug_validate();
}

// ---------------------------------------------------------------------------
// OverloadController: watermark hysteresis over scripted samples.
// ---------------------------------------------------------------------------

std::vector<bool> run_overload_script(OverloadController& controller,
                                      const std::vector<double>& samples) {
  std::vector<bool> states;
  states.reserve(samples.size());
  for (double s : samples) {
    states.push_back(controller.sample(s));
  }
  return states;
}

TEST(OverloadController, WatermarkHysteresisOverScriptedSamples) {
  OverloadConfig config;
  config.enabled = true;
  config.high_watermark = 0.9;
  config.low_watermark = 0.5;
  config.deadline_samples = 3;
  OverloadController controller(config);

  // Two saturated samples then relief: the streak resets, no entry.
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(0.3));
  EXPECT_EQ(controller.entries(), 0u);

  // Three consecutive saturated samples: shed mode engages.
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(1.0));
  EXPECT_TRUE(controller.sample(0.92));
  EXPECT_TRUE(controller.shedding());
  EXPECT_EQ(controller.entries(), 1u);

  // Hysteresis: dropping below high but above low keeps shedding.
  EXPECT_TRUE(controller.sample(0.7));
  // At or below low: exit.
  EXPECT_FALSE(controller.sample(0.5));
  EXPECT_EQ(controller.exits(), 1u);

  // Re-entry requires a fresh full streak.
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_TRUE(controller.sample(0.95));
  EXPECT_EQ(controller.entries(), 2u);

  controller.note_shed(5);
  controller.note_shed(3);
  EXPECT_EQ(controller.shed(), 8u);
  controller.debug_validate();
}

TEST(OverloadController, ScriptedSequenceIsReproducible) {
  OverloadConfig config;
  config.enabled = true;
  config.high_watermark = 0.8;
  config.low_watermark = 0.4;
  config.deadline_samples = 2;
  const std::vector<double> script{0.9, 0.85, 0.6, 0.3, 0.9, 0.9, 0.95, 0.4, 0.81, 0.81};

  OverloadController a(config);
  OverloadController b(config);
  EXPECT_EQ(run_overload_script(a, script), run_overload_script(b, script));
  EXPECT_EQ(a.entries(), b.entries());
  EXPECT_EQ(a.exits(), b.exits());
  EXPECT_EQ(a.entries(), 3u);
  EXPECT_EQ(a.exits(), 2u);

  OverloadConfig off;  // disabled: always Normal, regardless of saturation
  OverloadController inert(off);
  EXPECT_FALSE(inert.sample(1.0));
  EXPECT_FALSE(inert.shedding());
}

// ---------------------------------------------------------------------------
// De-rated billing: a Degraded instance receives proportionally fewer
// tuples while staying in rotation.
// ---------------------------------------------------------------------------

TEST(Derate, SkewsGreedySharesAwayFromDegradedInstance) {
  const auto config = test_config();
  PosgScheduler scheduler(2, config);
  for (common::InstanceId op = 0; op < 2; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<SyncRequest> requests(2);
  for (common::SeqNo i = 0; i < 2; ++i) {
    const Decision d = scheduler.schedule(1, i);
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  for (common::InstanceId op = 0; op < 2; ++op) {
    scheduler.on_sync_reply({op, requests[op].epoch, 0.0});
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);

  // Bill instance 1 at 4x: with uniform per-tuple cost the greedy argmin
  // settles on a 4:1 split (instance 1 gets ~1/5 of the stream).
  scheduler.set_derate(1, 4.0);
  std::array<std::uint64_t, 2> counts{0, 0};
  for (common::SeqNo i = 0; i < 500; ++i) {
    ++counts[scheduler.schedule(1, 2 + i).instance];
  }
  EXPECT_GT(counts[1], 0u);  // de-rated, not quarantined: it stays in rotation
  EXPECT_NEAR(static_cast<double>(counts[1]), 100.0, 10.0);
  EXPECT_GT(counts[0], 3 * counts[1]);
  scheduler.debug_validate();
}

// ---------------------------------------------------------------------------
// Full arc: slowed → Suspect → Degraded (de-rated) → quarantined →
// rejoined (seeded Ĉ, admission ramp) → back to fair share. Deterministic:
// two runs produce identical scheduling streams.
// ---------------------------------------------------------------------------

/// Runs one synchronization epoch: a fresh shipment opens SEND_ALL, the
/// markers go out round-robin, and each live instance replies with
/// Δ = (ratio − 1) × Ĉ_marker, i.e. a measured-over-billed drift of
/// exactly `ratio` (1.0 when absent from `ratios`).
void run_epoch(PosgScheduler& scheduler, const PosgConfig& config,
               const std::map<common::InstanceId, double>& ratios, common::SeqNo& seq,
               std::vector<common::InstanceId>* trace = nullptr) {
  const std::size_t k = scheduler.instances();
  // Every live instance re-ships; the last shipment's SEND_ALL epoch is the
  // one the markers below belong to (replies quote the marker's epoch).
  for (common::InstanceId op = 0; op < k; ++op) {
    if (!scheduler.is_failed(op)) {
      scheduler.on_sketches(make_shipment(op, config));
    }
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  std::vector<std::optional<SyncRequest>> requests(k);
  std::size_t guard = 0;
  while (scheduler.state() == PosgScheduler::State::kSendAll && guard++ < 4 * k) {
    const Decision d = scheduler.schedule(1, seq++);
    if (trace != nullptr) {
      trace->push_back(d.instance);
    }
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  for (common::InstanceId op = 0; op < k; ++op) {
    if (!requests[op].has_value()) {
      continue;
    }
    const auto it = ratios.find(op);
    const double ratio = it == ratios.end() ? 1.0 : it->second;
    const common::TimeMs delta = (ratio - 1.0) * requests[op]->estimated_cumulated;
    scheduler.on_sync_reply({op, requests[op]->epoch, delta});
  }
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

struct ArcTrace {
  std::vector<common::InstanceId> assignments;
  std::vector<common::TimeMs> final_loads;
  double derate_at_degrade = 0.0;
};

ArcTrace run_full_arc() {
  auto config = test_config();
  config.rejoin_ramp.ramp_tuples = 40;
  config.rejoin_ramp.tokens_per_tuple = 0.25;
  config.rejoin_ramp.burst = 4.0;
  const std::size_t k = 3;
  PosgScheduler scheduler(k, config);
  ArcTrace trace;
  common::SeqNo seq = 0;

  const auto schedule_n = [&](std::size_t n, std::array<std::uint64_t, 3>& counts) {
    counts = {0, 0, 0};
    for (std::size_t i = 0; i < n; ++i) {
      const common::InstanceId target = scheduler.schedule(1, seq++).instance;
      ++counts[target];
      trace.assignments.push_back(target);
    }
  };

  // Bootstrap (epoch 1): all healthy.
  run_epoch(scheduler, config, {}, seq, &trace.assignments);
  for (common::InstanceId op = 0; op < k; ++op) {
    EXPECT_EQ(scheduler.health().state(op), InstanceHealth::kLive);
  }

  // Epochs 2 and 3: instance 1 measures 2.5x slower than billed. One hot
  // epoch raises suspicion; the second degrades and de-rates it.
  run_epoch(scheduler, config, {{1, 2.5}}, seq, &trace.assignments);
  EXPECT_EQ(scheduler.health().state(1), InstanceHealth::kSuspect);
  EXPECT_DOUBLE_EQ(scheduler.derate(1), 1.0);
  run_epoch(scheduler, config, {{1, 2.5}}, seq, &trace.assignments);
  EXPECT_EQ(scheduler.health().state(1), InstanceHealth::kDegraded);
  EXPECT_GT(scheduler.derate(1), 1.0);
  trace.derate_at_degrade = scheduler.derate(1);

  // While Degraded the straggler stays in rotation but on a reduced share.
  std::array<std::uint64_t, 3> counts{};
  schedule_n(300, counts);
  EXPECT_GT(counts[1], 0u);
  EXPECT_LT(counts[1], counts[0]);
  EXPECT_LT(counts[1], counts[2]);

  // The straggler dies outright: quarantined, out of rotation.
  scheduler.mark_failed(1);
  EXPECT_EQ(scheduler.health().state(1), InstanceHealth::kQuarantined);
  EXPECT_EQ(scheduler.live_instances(), 2u);
  schedule_n(50, counts);
  EXPECT_EQ(counts[1], 0u);

  // Rejoin: Ĉ seeded from the live minimum, health reset, ramp armed.
  const auto loads_before = scheduler.estimated_loads();
  const common::TimeMs seed_expected = std::min(loads_before[0], loads_before[2]);
  scheduler.rejoin(1);
  EXPECT_EQ(scheduler.rejoin_count(), 1u);
  EXPECT_EQ(scheduler.health().state(1), InstanceHealth::kLive);
  EXPECT_DOUBLE_EQ(scheduler.derate(1), 1.0);
  EXPECT_DOUBLE_EQ(scheduler.estimated_loads()[1], seed_expected);
  EXPECT_EQ(scheduler.ramp_remaining(1), 40u);

  // Admission ramp: the token bucket throttles the rejoiner until it has
  // been admitted ramp_tuples times, then reports completion exactly once.
  std::size_t ramp_guard = 0;
  while (scheduler.ramp_remaining(1) > 0 && ramp_guard++ < 2000) {
    trace.assignments.push_back(scheduler.schedule(1, seq++).instance);
  }
  EXPECT_EQ(scheduler.ramp_remaining(1), 0u);
  EXPECT_EQ(scheduler.take_ramp_completions(), (std::vector<common::InstanceId>{1}));
  EXPECT_TRUE(scheduler.take_ramp_completions().empty());

  // Tail: with uniform costs and no de-rate the rejoiner's share settles
  // within 10% of fair (the ISSUE's recovery acceptance bound).
  schedule_n(3000, counts);
  EXPECT_NEAR(static_cast<double>(counts[1]), 1000.0, 100.0);

  scheduler.debug_validate();
  trace.final_loads = scheduler.estimated_loads();
  return trace;
}

TEST(FullArc, StragglerIsDeratedQuarantinedRejoinedAndRecovers) {
  const ArcTrace first = run_full_arc();
  EXPECT_GT(first.derate_at_degrade, 1.0);
  EXPECT_LE(first.derate_at_degrade, 8.0);

  // Byte-for-byte determinism: the same signal sequence reproduces the
  // same scheduling stream and the same final accounting.
  const ArcTrace second = run_full_arc();
  EXPECT_EQ(first.assignments, second.assignments);
  EXPECT_EQ(first.final_loads, second.final_loads);
  EXPECT_DOUBLE_EQ(first.derate_at_degrade, second.derate_at_degrade);
}

// ---------------------------------------------------------------------------
// Rejoin racing an in-flight epoch: a Δ from before the quarantine must
// land on the stale path, not on the freshly seeded Ĉ.
// ---------------------------------------------------------------------------

TEST(Rejoin, StaleDeltaFromBeforeQuarantineCannotCorruptSeededLoad) {
  const auto config = test_config();
  const std::size_t k = 3;
  PosgScheduler scheduler(k, config);
  common::SeqNo seq = 0;
  run_epoch(scheduler, config, {}, seq);

  // Open epoch 2 and push all markers out.
  scheduler.on_sketches(make_shipment(0, config));
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kSendAll);
  std::vector<std::optional<SyncRequest>> requests(k);
  while (scheduler.state() == PosgScheduler::State::kSendAll) {
    const Decision d = scheduler.schedule(1, seq++);
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  ASSERT_TRUE(requests[1].has_value());
  const common::Epoch epoch = requests[1]->epoch;

  scheduler.on_sync_reply({0, epoch, 0.0});
  scheduler.mark_failed(1);  // its reply is now abandoned
  scheduler.rejoin(1);       // re-admitted mid-epoch, re-armed as replied
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);

  const auto loads_at_rejoin = scheduler.estimated_loads();
  const auto stale_before = scheduler.stale_reply_count();

  // The pre-quarantine Δ finally arrives — late, huge, and for the very
  // epoch that is still in flight. It must be counted and discarded.
  scheduler.on_sync_reply({1, epoch, 1e6});
  EXPECT_EQ(scheduler.stale_reply_count(), stale_before + 1);
  EXPECT_EQ(scheduler.estimated_loads(), loads_at_rejoin);
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);

  // The remaining survivor's reply completes the epoch; the rejoiner's
  // seeded Ĉ enters the correction with Δ = 0.
  scheduler.on_sync_reply({2, epoch, 0.0});
  EXPECT_EQ(scheduler.state(), PosgScheduler::State::kRun);
  EXPECT_DOUBLE_EQ(scheduler.estimated_loads()[1], loads_at_rejoin[1]);
  scheduler.debug_validate();
}

// ---------------------------------------------------------------------------
// Engine load shedding: sustained overload drops (and counts) tuples
// instead of stalling the spout; every emitted tuple is either executed or
// counted as shed.
// ---------------------------------------------------------------------------

/// Spout emitting `count` tuples as fast as possible (sustained overload
/// against a slow bolt).
class FloodSpout final : public engine::Spout {
 public:
  explicit FloodSpout(std::size_t count) : count_(count) {}
  bool next(engine::OutputCollector& collector) override {
    if (emitted_ >= count_) {
      return false;
    }
    engine::Tuple tuple;
    tuple.item = emitted_ % 8;
    collector.emit(std::move(tuple));
    ++emitted_;
    return true;
  }

 private:
  std::size_t count_;
  std::size_t emitted_ = 0;
};

TEST(EngineOverload, SustainedOverloadShedsAndConservesEveryTuple) {
  const std::size_t m = 4000;
  engine::TopologyBuilder builder;
  builder.add_spout("src", [m](const engine::ComponentContext&) {
    return std::make_unique<FloodSpout>(m);
  });
  builder.add_bolt("slow",
                   [](const engine::ComponentContext&) {
                     return std::make_unique<engine::SleepBolt>(
                         [](common::Item, common::InstanceId, common::SeqNo) { return 0.1; });
                   },
                   2, {{"src", std::make_shared<engine::ShuffleGrouping>()}});

  engine::EngineConfig config;
  config.queue_capacity = 8;
  config.overload.enabled = true;
  config.overload.high_watermark = 0.75;
  config.overload.low_watermark = 0.25;
  config.overload.deadline_samples = 2;

  engine::Engine eng(builder.build(), config);
  eng.run();
  const auto stats = eng.stats("slow");

  // A flood against a 0.1 ms/tuple bolt behind depth-8 queues must shed.
  EXPECT_GT(stats.shed, 0u);
  EXPECT_GE(stats.shed_entries, 1u);
  EXPECT_GE(stats.shed_entries, stats.shed_exits);
  // Conservation: every spout emission was either executed or counted shed.
  EXPECT_EQ(stats.executed + stats.shed, m);
  EXPECT_EQ(stats.errors, 0u);
  // Completions are recorded for executed tuples only.
  EXPECT_EQ(eng.completions().count(), stats.executed);

  // The counters surface through the shared resilience report.
  metrics::ResilienceStats report;
  report.tuples_shed = stats.shed;
  report.shed_entries = stats.shed_entries;
  report.shed_exits = stats.shed_exits;
  report.derate = {1.0, 1.0};
  const std::string line = report.summary();
  EXPECT_NE(line.find("shed=" + std::to_string(stats.shed)), std::string::npos);
  EXPECT_NE(line.find("derate=[1 1]"), std::string::npos);
}

TEST(ResilienceStats, SummaryMentionsEveryCounter) {
  metrics::ResilienceStats stats;
  stats.tuples_shed = 12;
  stats.shed_entries = 3;
  stats.shed_exits = 2;
  stats.rejoins = 1;
  stats.suspect_transitions = 4;
  stats.degraded_transitions = 2;
  stats.promotions = 2;
  stats.derate = {1.0, 2.5};
  const std::string line = stats.summary();
  EXPECT_NE(line.find("shed=12 (entries=3 exits=2)"), std::string::npos);
  EXPECT_NE(line.find("rejoins=1"), std::string::npos);
  EXPECT_NE(line.find("suspect=4"), std::string::npos);
  EXPECT_NE(line.find("degraded=2"), std::string::npos);
  EXPECT_NE(line.find("promoted=2"), std::string::npos);
  EXPECT_NE(line.find("derate=[1 2.5]"), std::string::npos);
}

}  // namespace
