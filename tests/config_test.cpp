// Tests for the unified posg::Config tree: the defaults validate clean,
// every rejectable field reports its exact dotted path and error code,
// all failures surface in one validate() pass, require_valid() throws a
// typed posg::ConfigValidationError, and the materializer helpers stamp
// the authoritative scheduler config into the per-layer copies.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace posg {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

/// True iff `errors` contains exactly one entry for `field`, with `code`.
testing::AssertionResult has_error(const std::vector<ConfigError>& errors,
                                   const std::string& field, ConfigErrorCode code) {
  const auto matches_field = [&field](const ConfigError& e) { return e.field == field; };
  const auto n = std::count_if(errors.begin(), errors.end(), matches_field);
  if (n != 1) {
    auto result = testing::AssertionFailure()
                  << "expected exactly one error for '" << field << "', found " << n << "; got:";
    for (const ConfigError& e : errors) {
      result << " [" << e.field << "]";
    }
    return result;
  }
  const auto it = std::find_if(errors.begin(), errors.end(), matches_field);
  if (it->code != code) {
    return testing::AssertionFailure()
           << "error for '" << field << "' has code " << static_cast<int>(it->code)
           << ", expected " << static_cast<int>(code);
  }
  if (it->message.empty()) {
    return testing::AssertionFailure() << "error for '" << field << "' has an empty message";
  }
  return testing::AssertionSuccess();
}

TEST(Config, DefaultsAreValid) {
  const Config config;
  const auto errors = config.validate();
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front().field);
  EXPECT_NO_THROW(config.require_valid());
}

// -- scheduler.* ------------------------------------------------------------

TEST(Config, RejectsEpsilonOutsideUnitInterval) {
  Config config;
  config.scheduler.epsilon = 0.0;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.epsilon", ConfigErrorCode::kOutOfRange));
  config.scheduler.epsilon = 1.5;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.epsilon", ConfigErrorCode::kOutOfRange));
  config.scheduler.epsilon = kNaN;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.epsilon", ConfigErrorCode::kOutOfRange));
  config.scheduler.epsilon = 1.0;  // boundary is allowed
  EXPECT_TRUE(config.validate().empty());
}

TEST(Config, RejectsDeltaOutsideOpenUnitInterval) {
  Config config;
  config.scheduler.delta = 0.0;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.delta", ConfigErrorCode::kOutOfRange));
  config.scheduler.delta = 1.0;  // delta = 1 means no accuracy guarantee at all
  EXPECT_TRUE(has_error(config.validate(), "scheduler.delta", ConfigErrorCode::kOutOfRange));
}

TEST(Config, RejectsZeroWindow) {
  Config config;
  config.scheduler.window = 0;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.window", ConfigErrorCode::kMustBePositive));
}

TEST(Config, RejectsNonPositiveMu) {
  Config config;
  config.scheduler.mu = 0.0;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.mu", ConfigErrorCode::kMustBePositive));
  config.scheduler.mu = kInf;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.mu", ConfigErrorCode::kMustBePositive));
}

// -- scheduler.health.* -----------------------------------------------------

TEST(Config, RejectsHealthDriftThresholdsBelowOne) {
  Config config;
  config.scheduler.health.suspect_drift = 0.5;
  // Lowering suspect below 1 also empties promote_drift's [1, suspect]
  // window — both failures must be reported.
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "scheduler.health.suspect_drift", ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "scheduler.health.promote_drift", ConfigErrorCode::kOrdering));
}

TEST(Config, RejectsDegradeDriftBelowSuspectDrift) {
  Config config;
  config.scheduler.health.suspect_drift = 2.0;
  config.scheduler.health.degrade_drift = 1.5;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.health.degrade_drift",
                        ConfigErrorCode::kOrdering));
}

TEST(Config, RejectsPromoteDriftAboveSuspectDrift) {
  Config config;
  config.scheduler.health.suspect_drift = 2.0;
  config.scheduler.health.degrade_drift = 3.0;
  config.scheduler.health.promote_drift = 2.5;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.health.promote_drift",
                        ConfigErrorCode::kOrdering));
}

TEST(Config, RejectsDerateCapBelowOne) {
  Config config;
  config.scheduler.health.derate_cap = 0.9;
  EXPECT_TRUE(has_error(config.validate(), "scheduler.health.derate_cap",
                        ConfigErrorCode::kOutOfRange));
}

TEST(Config, RejectsZeroHealthEpochCounts) {
  Config config;
  config.scheduler.health.degrade_epochs = 0;
  config.scheduler.health.promote_epochs = 0;
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "scheduler.health.degrade_epochs",
                        ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "scheduler.health.promote_epochs",
                        ConfigErrorCode::kMustBePositive));
}

TEST(Config, RejectsBadQueueHealthFields) {
  Config config;
  config.scheduler.health.queue_skew = 0.5;
  config.scheduler.health.queue_floor = -1.0;
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "scheduler.health.queue_skew", ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "scheduler.health.queue_floor", ConfigErrorCode::kOutOfRange));
}

// -- scheduler.rejoin_ramp.* ------------------------------------------------

TEST(Config, RejectsRampRatesOnlyWhenRampEnabled) {
  Config config;
  config.scheduler.rejoin_ramp.tokens_per_tuple = 0.0;
  config.scheduler.rejoin_ramp.burst = 0.0;
  ASSERT_GT(config.scheduler.rejoin_ramp.ramp_tuples, 0u);  // default: enabled
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "scheduler.rejoin_ramp.tokens_per_tuple",
                        ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "scheduler.rejoin_ramp.burst", ConfigErrorCode::kOutOfRange));

  // ramp_tuples == 0 disables ramping; the rate fields are never read.
  config.scheduler.rejoin_ramp.ramp_tuples = 0;
  EXPECT_TRUE(config.validate().empty());
}

// -- engine.* ---------------------------------------------------------------

TEST(Config, RejectsZeroQueueCapacity) {
  Config config;
  config.engine.queue_capacity = 0;
  EXPECT_TRUE(has_error(config.validate(), "engine.queue_capacity",
                        ConfigErrorCode::kMustBePositive));
}

TEST(Config, RejectsBadOverloadWatermarks) {
  Config config;
  config.engine.overload.high_watermark = 1.5;
  EXPECT_TRUE(has_error(config.validate(), "engine.overload.high_watermark",
                        ConfigErrorCode::kOutOfRange));

  Config ordering;
  ordering.engine.overload.low_watermark = ordering.engine.overload.high_watermark;
  EXPECT_TRUE(has_error(ordering.validate(), "engine.overload.low_watermark",
                        ConfigErrorCode::kOrdering));
}

TEST(Config, RejectsZeroDeadlineSamples) {
  Config config;
  config.engine.overload.deadline_samples = 0;
  EXPECT_TRUE(has_error(config.validate(), "engine.overload.deadline_samples",
                        ConfigErrorCode::kMustBePositive));
}

// -- engine.elastic.* -------------------------------------------------------

TEST(Config, DisabledElasticControllerSkipsTunableValidation) {
  Config config;
  ASSERT_FALSE(config.engine.elastic.enabled);  // default: off
  config.engine.elastic.ewma_alpha = 0.0;
  config.engine.elastic.min_instances = 0;
  config.engine.elastic_sample_period_ms = 0.0;
  EXPECT_TRUE(config.validate().empty());  // never read while disabled
}

TEST(Config, RejectsBadElasticTunablesWhenEnabled) {
  Config config;
  config.engine.elastic.enabled = true;
  EXPECT_TRUE(config.validate().empty());  // enabled defaults are valid

  config.engine.elastic.ewma_alpha = 1.5;
  config.engine.elastic.derivative_alpha = kNaN;
  config.engine.elastic.horizon_samples = -1.0;
  config.engine.elastic.min_instances = 0;
  config.engine.elastic.up_hold = 0;
  config.engine.elastic.down_hold = 0;
  config.engine.elastic.skew_veto = 1.0;
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "engine.elastic.ewma_alpha", ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "engine.elastic.derivative_alpha",
                        ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "engine.elastic.horizon_samples",
                        ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "engine.elastic.min_instances",
                        ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "engine.elastic.up_hold", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "engine.elastic.down_hold", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "engine.elastic.skew_veto", ConfigErrorCode::kOutOfRange));
}

TEST(Config, RejectsElasticThresholdAndBoundOrderingViolations) {
  Config config;
  config.engine.elastic.enabled = true;
  config.engine.elastic.min_instances = 4;
  config.engine.elastic.max_instances = 2;  // nonzero and below the floor
  config.engine.elastic.down_backlog_per_instance = config.engine.elastic.up_backlog_per_instance;
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "engine.elastic.max_instances", ConfigErrorCode::kOrdering));
  EXPECT_TRUE(has_error(errors, "engine.elastic.down_backlog_per_instance",
                        ConfigErrorCode::kOrdering));

  // max_instances == 0 is the documented "unbounded" value, not an error.
  config.engine.elastic.max_instances = 0;
  config.engine.elastic.down_backlog_per_instance = 0.0;
  EXPECT_TRUE(config.validate().empty());
}

TEST(Config, RejectsBadElasticSamplePeriodOnlyWhenEnabled) {
  Config config;
  config.engine.elastic.enabled = true;
  config.engine.elastic_sample_period_ms = 0.0;
  EXPECT_TRUE(has_error(config.validate(), "engine.elastic_sample_period_ms",
                        ConfigErrorCode::kMustBePositive));
  config.engine.elastic_sample_period_ms = kInf;
  EXPECT_TRUE(has_error(config.validate(), "engine.elastic_sample_period_ms",
                        ConfigErrorCode::kMustBePositive));
}

// -- runtime.* --------------------------------------------------------------

TEST(Config, RejectsZeroInstances) {
  Config config;
  config.runtime.instances = 0;
  EXPECT_TRUE(has_error(config.validate(), "runtime.instances",
                        ConfigErrorCode::kMustBePositive));
}

TEST(Config, RejectsBadRuntimeDeadlines) {
  Config config;
  config.runtime.recv_deadline = std::chrono::milliseconds{0};
  config.runtime.hello_deadline = std::chrono::milliseconds{-1};
  config.runtime.epoch_deadline = std::chrono::milliseconds{-1};
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "runtime.recv_deadline", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "runtime.hello_deadline", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "runtime.epoch_deadline", ConfigErrorCode::kOutOfRange));

  // epoch_deadline == 0 is the documented "disabled" value, not an error.
  Config disabled;
  disabled.runtime.epoch_deadline = std::chrono::milliseconds{0};
  EXPECT_TRUE(disabled.validate().empty());
}

TEST(Config, RejectsZeroTraceCapacity) {
  Config config;
  config.runtime.obs.trace_capacity = 0;
  EXPECT_TRUE(has_error(config.validate(), "runtime.obs.trace_capacity",
                        ConfigErrorCode::kMustBePositive));
}

// -- instance.* -------------------------------------------------------------

TEST(Config, RejectsBadInstanceFields) {
  Config config;
  config.instance.recv_deadline = std::chrono::milliseconds{0};
  config.instance.cost_scale = 0.0;
  const auto errors = config.validate();
  EXPECT_TRUE(has_error(errors, "instance.recv_deadline", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "instance.cost_scale", ConfigErrorCode::kMustBePositive));

  config.instance.cost_scale = kNaN;
  EXPECT_TRUE(has_error(config.validate(), "instance.cost_scale",
                        ConfigErrorCode::kMustBePositive));
}

TEST(Config, RejectsBadRealSleepScale) {
  Config config;
  config.instance.real_sleep_scale = -0.5;
  EXPECT_TRUE(has_error(config.validate(), "instance.real_sleep_scale",
                        ConfigErrorCode::kOutOfRange));
  config.instance.real_sleep_scale = kNaN;
  EXPECT_TRUE(has_error(config.validate(), "instance.real_sleep_scale",
                        ConfigErrorCode::kOutOfRange));
  config.instance.real_sleep_scale = 0.0;  // documented "disabled" value
  EXPECT_TRUE(config.validate().empty());
}

// -- whole-tree behaviour ---------------------------------------------------

TEST(Config, ReportsEveryFailureInOnePass) {
  Config config;
  config.scheduler.epsilon = -1.0;
  config.scheduler.window = 0;
  config.engine.queue_capacity = 0;
  config.runtime.instances = 0;
  config.instance.cost_scale = -2.0;
  const auto errors = config.validate();
  EXPECT_EQ(errors.size(), 5u);
  EXPECT_TRUE(has_error(errors, "scheduler.epsilon", ConfigErrorCode::kOutOfRange));
  EXPECT_TRUE(has_error(errors, "scheduler.window", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "engine.queue_capacity", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "runtime.instances", ConfigErrorCode::kMustBePositive));
  EXPECT_TRUE(has_error(errors, "instance.cost_scale", ConfigErrorCode::kMustBePositive));
}

TEST(Config, RequireValidThrowsTypedErrorListingFields) {
  Config config;
  config.scheduler.mu = -1.0;
  config.runtime.instances = 0;
  try {
    config.require_valid();
    FAIL() << "require_valid() did not throw";
  } catch (const ConfigValidationError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kConfig);
    EXPECT_EQ(e.errors().size(), 2u);
    const std::string what = e.what();
    EXPECT_NE(what.find("scheduler.mu"), std::string::npos);
    EXPECT_NE(what.find("runtime.instances"), std::string::npos);
  }
}

TEST(Config, ValidationErrorIsCatchableAsPosgError) {
  Config config;
  config.scheduler.window = 0;
  EXPECT_THROW(config.require_valid(), Error);
  EXPECT_THROW(config.require_valid(), std::runtime_error);
}

TEST(Config, MaterializersStampAuthoritativeScheduler) {
  Config config;
  config.scheduler.window = 123;
  config.scheduler.sketch_seed = 0xDEADBEEFULL;
  config.runtime.instances = 7;
  // Divergent nested copies must be overwritten, not trusted.
  config.runtime.posg.window = 999;
  config.instance.posg.sketch_seed = 1;
  config.instance.cost_scale = 4.0;

  const SchedulerRuntimeConfig runtime = config.scheduler_runtime();
  EXPECT_EQ(runtime.instances, 7u);
  EXPECT_EQ(runtime.posg.window, 123u);
  EXPECT_EQ(runtime.posg.sketch_seed, 0xDEADBEEFULL);

  const InstanceRuntimeConfig instance = config.instance_runtime();
  EXPECT_EQ(instance.posg.window, 123u);
  EXPECT_EQ(instance.posg.sketch_seed, 0xDEADBEEFULL);
  EXPECT_EQ(instance.cost_scale, 4.0);
}

}  // namespace
}  // namespace posg
