// Unit tests for the metrics substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/completion.hpp"
#include "metrics/stats.hpp"

namespace {

using namespace posg;
using metrics::CompletionSeries;
using metrics::RunningStats;

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> samples{3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  double sum = 0.0;
  for (double s : samples) {
    stats.add(s);
    sum += s;
  }
  const double mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double s : samples) {
    var += (s - mean) * (s - mean);
  }
  var /= static_cast<double>(samples.size());
  EXPECT_EQ(stats.count(), samples.size());
  EXPECT_NEAR(stats.mean(), mean, 1e-12);
  EXPECT_NEAR(stats.variance(), var, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_NEAR(stats.sum(), sum, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    const double v = std::sin(i) * 10;
    (i % 2 == 0 ? left : right).add(v);
    all.add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats empty;
  RunningStats some;
  some.add(2.0);
  some.add(4.0);
  RunningStats copy = some;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 3.0);
  empty.merge(some);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(RunningStats, VarianceOfSingleSampleIsZero) {
  RunningStats stats;
  stats.add(42.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> samples{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(metrics::percentile(samples, 0), 10.0);
  EXPECT_DOUBLE_EQ(metrics::percentile(samples, 100), 40.0);
  EXPECT_DOUBLE_EQ(metrics::percentile(samples, 50), 25.0);
  EXPECT_DOUBLE_EQ(metrics::percentile(samples, 25), 17.5);
}

TEST(Percentile, HandlesUnsortedInputAndSingleSample) {
  EXPECT_DOUBLE_EQ(metrics::percentile({5.0, 1.0, 3.0}, 50), 3.0);
  EXPECT_DOUBLE_EQ(metrics::percentile({7.0}, 99), 7.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(metrics::percentile({}, 50), std::invalid_argument);
  EXPECT_THROW(metrics::percentile({1.0}, 101), std::invalid_argument);
}

TEST(CompletionSeries, AverageOverRecordedTuples) {
  CompletionSeries series;
  series.record(0, 10.0);
  series.record(1, 20.0);
  series.record(2, 30.0);
  EXPECT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.average(), 20.0);
}

TEST(CompletionSeries, SupportsOutOfOrderRecording) {
  CompletionSeries series;
  series.record(5, 50.0);
  series.record(2, 20.0);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series.at(5), 50.0);
  EXPECT_DOUBLE_EQ(series.at(2), 20.0);
  EXPECT_TRUE(std::isnan(series.at(3)));
  EXPECT_TRUE(std::isnan(series.at(99)));
}

TEST(CompletionSeries, RejectsDuplicatesAndNegatives) {
  CompletionSeries series;
  series.record(0, 1.0);
  EXPECT_THROW(series.record(0, 2.0), std::logic_error);
  EXPECT_THROW(series.record(1, -1.0), std::invalid_argument);
}

TEST(CompletionSeries, AverageOfEmptyThrows) {
  CompletionSeries series;
  EXPECT_THROW(series.average(), std::invalid_argument);
}

TEST(CompletionSeries, WindowedMinMeanMax) {
  CompletionSeries series;
  for (common::SeqNo i = 0; i < 6; ++i) {
    series.record(i, static_cast<double>(i * 10));
  }
  const auto points = series.windowed(3);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].window_start, 0u);
  EXPECT_DOUBLE_EQ(points[0].min, 0.0);
  EXPECT_DOUBLE_EQ(points[0].mean, 10.0);
  EXPECT_DOUBLE_EQ(points[0].max, 20.0);
  EXPECT_EQ(points[1].window_start, 3u);
  EXPECT_DOUBLE_EQ(points[1].mean, 40.0);
}

TEST(CompletionSeries, WindowedSkipsGaps) {
  CompletionSeries series;
  series.record(0, 5.0);
  series.record(4, 15.0);
  const auto points = series.windowed(2);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].mean, 5.0);
  EXPECT_DOUBLE_EQ(points[1].mean, 15.0);
}

TEST(CompletionSeries, ValuesSkipsUnrecorded) {
  CompletionSeries series;
  series.record(0, 1.0);
  series.record(3, 4.0);
  EXPECT_EQ(series.values(), (std::vector<double>{1.0, 4.0}));
}

TEST(Speedup, IsBaselineOverCandidate) {
  CompletionSeries baseline;
  CompletionSeries candidate;
  baseline.record(0, 30.0);
  baseline.record(1, 30.0);
  candidate.record(0, 20.0);
  candidate.record(1, 20.0);
  EXPECT_DOUBLE_EQ(metrics::speedup(baseline, candidate), 1.5);
}

}  // namespace
