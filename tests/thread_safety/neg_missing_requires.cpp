// MUST FAIL to compile under -Wthread-safety -Werror=thread-safety:
// calls a REQUIRES(mutex_) contract method without holding the mutex.

#include "thread_safety/harness.hpp"

namespace posg::ts_harness {

void call_without_lock() {
  Guarded g;
  g.bump_locked();  // error: calling function 'bump_locked' requires holding mutex
}

}  // namespace posg::ts_harness
