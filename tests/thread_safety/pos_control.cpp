// MUST COMPILE: the control snippet. Correct use of every construct the
// neg_*.cpp snippets misuse — if this fails, the harness (not the code
// under test) is broken and negative_compile.cmake reports it as such.

#include "thread_safety/harness.hpp"

namespace posg::ts_harness {

int use_correctly() {
  Guarded g;
  g.set(1);
  {
    MutexLock lock(g.mutex());
    g.bump_locked();  // REQUIRES(mutex_) satisfied by the scoped lock
  }
  return g.get();
}

}  // namespace posg::ts_harness
