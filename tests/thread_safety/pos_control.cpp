// MUST COMPILE: the control snippet. Correct use of every construct the
// neg_*.cpp snippets misuse — if this fails, the harness (not the code
// under test) is broken and negative_compile.cmake reports it as such.

#include <vector>

#include "engine/spsc_ring.hpp"
#include "thread_safety/harness.hpp"

namespace posg::ts_harness {

int use_correctly() {
  Guarded g;
  g.set(1);
  {
    MutexLock lock(g.mutex());
    g.bump_locked();  // REQUIRES(mutex_) satisfied by the scoped lock
  }
  return g.get();
}

// Correct SPSC role usage: scoped binds on both ends, and the
// assert_held() bridge for a holder that claimed the role at runtime.
std::size_t use_ring_correctly(engine::SpscRing<int>& ring, std::vector<int>& batch) {
  std::size_t delivered = 0;
  {
    engine::SpscBind produce(ring.producer_role());
    ring.push(1);
    ring.push_all(batch);
  }
  {
    engine::SpscBind consume(ring.consumer_role());
    std::vector<int> out;
    delivered = ring.pop_all(out);
  }
  ring.producer_role().claim();
  ring.producer_role().assert_held();  // re-introduces the capability
  ring.push(2);
  ring.producer_role().unclaim();
  return delivered;
}

}  // namespace posg::ts_harness
