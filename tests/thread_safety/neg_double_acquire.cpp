// MUST FAIL to compile under -Wthread-safety -Werror=thread-safety:
// acquires the same mutex twice in one scope (posg::Mutex is non-reentrant;
// at runtime this would self-deadlock — the DCHECK layer aborts instead).

#include "thread_safety/harness.hpp"

namespace posg::ts_harness {

void double_acquire() {
  Guarded g;
  MutexLock outer(g.mutex());
  MutexLock inner(g.mutex());  // error: acquiring mutex that is already held
  g.bump_locked();
}

}  // namespace posg::ts_harness
