// MUST FAIL to compile under -Wthread-safety -Werror=thread-safety:
// pushes into an SpscRing without holding its producer role — the static
// half of the single-producer contract (a "third thread" that never
// claimed either end touching the ring).

#include <vector>

#include "engine/spsc_ring.hpp"

namespace posg::ts_harness {

void push_without_role(engine::SpscRing<int>& ring, std::vector<int>& batch) {
  ring.push(1);           // error: requires holding spsc_role 'producer_role_'
  ring.push_all(batch);   // error: same
  std::vector<int> out;
  ring.pop_all(out);      // error: requires holding spsc_role 'consumer_role_'
}

}  // namespace posg::ts_harness
