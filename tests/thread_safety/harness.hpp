#pragma once

// Shared fixture for the negative-compilation harness
// (tests/thread_safety/negative_compile.cmake): a minimal guarded structure
// exercising the annotation surface of src/common/sync.hpp. Each neg_*.cpp
// snippet includes this and commits exactly one discipline violation that
// -Wthread-safety -Werror=thread-safety must reject; pos_control.cpp uses
// the same fixture correctly and must compile, proving a failure means "the
// analysis caught the bug", not "the fixture is broken".

#include "common/sync.hpp"

namespace posg::ts_harness {

class Guarded {
 public:
  void set(int v) {
    MutexLock lock(mutex_);
    value_ = v;
  }

  int get() const {
    MutexLock lock(mutex_);
    return value_;
  }

  /// Contract helper: the caller must already hold mutex_.
  void bump_locked() REQUIRES(mutex_) { ++value_; }

  Mutex& mutex() RETURN_CAPABILITY(mutex_) { return mutex_; }

 private:
  mutable Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace posg::ts_harness
