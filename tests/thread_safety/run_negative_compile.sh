#!/bin/sh
# ctest wrapper for the negative-compilation harness (negative_compile.cmake).
#
#   run_negative_compile.sh <cmake> <repo_root> [<configured-cxx> <cxx-id>]
#
# Resolves a clang++ (the configured compiler when it is Clang, else CLANGXX,
# else a PATH probe) and exits 77 — ctest's SKIP_RETURN_CODE for this test —
# when none is installed, mirroring tools/run_thread_safety.sh: the analysis
# is Clang-only and the CI thread-safety job enforces it.
set -u

cmake_bin="${1:?usage: run_negative_compile.sh <cmake> <repo_root> [cxx cxx_id]}"
repo_root="${2:?usage: run_negative_compile.sh <cmake> <repo_root> [cxx cxx_id]}"
configured_cxx="${3:-}"
configured_id="${4:-}"

clang=""
case "$configured_id" in
  *Clang*) clang="$configured_cxx" ;;
esac
if [ -z "$clang" ] && [ -n "${CLANGXX:-}" ]; then
  clang="$CLANGXX"
fi
if [ -z "$clang" ]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 clang++-15; do
    if command -v "$candidate" >/dev/null 2>&1; then
      clang="$candidate"
      break
    fi
  done
fi
if [ -z "$clang" ]; then
  echo "negative_compile: no clang++ available — skipping (the CI thread-safety job enforces this)"
  exit 77
fi

exec "$cmake_bin" \
  -DCLANG="$clang" \
  -DSRC_DIR="$repo_root/src" \
  -DTEST_DIR="$repo_root/tests" \
  -P "$repo_root/tests/thread_safety/negative_compile.cmake"
