# Negative-compilation harness for the thread-safety annotations
# (src/common/sync.hpp). Run as a ctest entry through
# run_negative_compile.sh (which resolves a Clang and soft-skips with
# exit 77 when none is installed):
#
#   cmake -DCLANG=<clang++> -DSRC_DIR=<repo>/src -DTEST_DIR=<repo>/tests \
#         -P tests/thread_safety/negative_compile.cmake
#
# Semantics:
#   * pos_control.cpp must COMPILE under -Wthread-safety -Werror=thread-safety
#     (otherwise the harness itself is broken and every "expected failure"
#     below would be meaningless).
#   * each neg_*.cpp must FAIL to compile, rejected by -Wthread-safety
#     specifically — these are the regression locks on the annotations: if a
#     refactor of sync.hpp silently stops propagating a capability, the
#     snippet starts compiling and this script fails.

if(NOT DEFINED CLANG OR NOT DEFINED SRC_DIR OR NOT DEFINED TEST_DIR)
  message(FATAL_ERROR "negative_compile.cmake: CLANG, SRC_DIR and TEST_DIR are required")
endif()

set(flags -std=c++20 -fsyntax-only -Wthread-safety -Werror=thread-safety
          -I "${SRC_DIR}" -I "${TEST_DIR}" -DPOSG_DCHECKS_ENABLED=1)

function(check_compiles src expect_success)
  execute_process(
    COMMAND "${CLANG}" ${flags} "${TEST_DIR}/thread_safety/${src}"
    RESULT_VARIABLE result
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(expect_success AND NOT result EQUAL 0)
    message(FATAL_ERROR "negative_compile: control snippet ${src} FAILED to "
                        "compile — the harness is broken:\n${err}")
  endif()
  if(NOT expect_success AND result EQUAL 0)
    message(FATAL_ERROR "negative_compile: ${src} COMPILED but must be "
                        "rejected — the thread-safety annotations no longer "
                        "catch this violation")
  endif()
  if(NOT expect_success)
    # The rejection must come from the analysis, not an unrelated error.
    if(NOT err MATCHES "-Wthread-safety")
      message(FATAL_ERROR "negative_compile: ${src} failed for a reason other "
                          "than -Wthread-safety:\n${err}")
    endif()
  endif()
  message(STATUS "negative_compile: ${src} ok")
endfunction()

check_compiles(pos_control.cpp TRUE)
check_compiles(neg_unguarded_field.cpp FALSE)
check_compiles(neg_missing_requires.cpp FALSE)
check_compiles(neg_double_acquire.cpp FALSE)
check_compiles(neg_spsc_unbound_push.cpp FALSE)

message(STATUS "negative_compile: all snippets behaved as asserted")
