// MUST FAIL to compile under -Wthread-safety -Werror=thread-safety:
// writes a GUARDED_BY field without holding its mutex.

#include "thread_safety/harness.hpp"

namespace posg::ts_harness {

class Unguarded {
 public:
  void racy_write(int v) {
    value_ = v;  // error: writing variable 'value_' requires holding mutex 'mutex_'
  }

 private:
  Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

void drive() {
  Unguarded u;
  u.racy_write(7);
}

}  // namespace posg::ts_harness
