// Tests of the elastic-k layer (DESIGN.md §11): the ElasticController's
// predictive decision rule (POTUS-style backlog derivative, hysteresis,
// skew veto), the PosgScheduler's lossless drain/retire protocol, the
// simulator's autoscale mode (flash crowd vs. static provisioning,
// conservation, no flapping under gray faults), and the exact-threshold
// boundaries of the neighbors elasticity leans on (HealthMonitor
// re-promotion, OverloadController shed re-entry).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/elastic.hpp"
#include "core/instance_health.hpp"
#include "core/instance_tracker.hpp"
#include "core/overload.hpp"
#include "core/posg_scheduler.hpp"
#include "core/round_robin.hpp"
#include "metrics/stats.hpp"
#include "obs/metrics_registry.hpp"
#include "sim/simulator.hpp"
#include "workload/arrival.hpp"

namespace {

using namespace posg;
using core::ElasticConfig;
using core::ElasticController;
using core::ElasticSample;
using core::InstanceTracker;
using core::PosgConfig;
using core::PosgScheduler;
using core::ScaleAction;
using sim::Simulator;

// ---------------------------------------------------------------------------
// ElasticController decision rule
// ---------------------------------------------------------------------------

ElasticConfig controller_config() {
  ElasticConfig config;
  config.enabled = true;
  config.min_instances = 1;
  config.max_instances = 8;
  config.up_backlog_per_instance = 100.0;
  config.down_backlog_per_instance = 10.0;
  config.up_hold = 2;
  config.down_hold = 3;
  config.cooldown_samples = 2;
  config.skew_veto = 2.5;
  return config;
}

ElasticSample make_sample(double backlog, std::size_t serving, double skew = 1.0) {
  ElasticSample sample;
  sample.backlog_ms = backlog;
  sample.queue_skew = skew;
  sample.serving = serving;
  return sample;
}

TEST(ElasticController, DisabledControllerNeverActs) {
  ElasticConfig config = controller_config();
  config.enabled = false;
  ElasticController controller(config);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(controller.on_sample(make_sample(1e6, 2)).kind, ScaleAction::Kind::kNone);
  }
  EXPECT_EQ(controller.samples(), 0u);
  EXPECT_EQ(controller.scale_ups(), 0u);
}

TEST(ElasticController, FirstSamplePrimesTheEwmas) {
  ElasticController controller(controller_config());
  controller.on_sample(make_sample(300.0, 2));
  EXPECT_DOUBLE_EQ(controller.backlog_ewma(), 300.0);
  EXPECT_DOUBLE_EQ(controller.backlog_derivative(), 0.0);
  EXPECT_DOUBLE_EQ(controller.predicted_backlog(), 300.0);
}

TEST(ElasticController, PredictorExtrapolatesARisingTrend) {
  // Linear ramp: the smoothed derivative turns positive and the predictor
  // looks ahead of the smoothed level, which itself lags the raw samples.
  ElasticConfig config = controller_config();
  config.up_backlog_per_instance = 1e9;  // observe the predictor, never act
  ElasticController controller(config);
  double backlog = 0.0;
  for (int i = 0; i < 10; ++i) {
    controller.on_sample(make_sample(backlog, 2));
    backlog += 100.0;
  }
  EXPECT_GT(controller.backlog_derivative(), 0.0);
  EXPECT_GT(controller.predicted_backlog(), controller.backlog_ewma());
  EXPECT_NEAR(controller.predicted_backlog(),
              controller.backlog_ewma() +
                  controller.backlog_derivative() * config.horizon_samples,
              1e-9);
}

TEST(ElasticController, PredictionNeverGoesNegative) {
  ElasticController controller(controller_config());
  controller.on_sample(make_sample(500.0, 2));
  for (int i = 0; i < 20; ++i) {
    controller.on_sample(make_sample(0.0, 2));
  }
  EXPECT_GE(controller.predicted_backlog(), 0.0);
}

TEST(ElasticController, ScaleUpWaitsForTheHoldStreak) {
  ElasticController controller(controller_config());
  // Overloaded sample (per-instance 300 >= 100), but a single one: the
  // up_hold = 2 hysteresis must not fire yet.
  EXPECT_EQ(controller.on_sample(make_sample(600.0, 2)).kind, ScaleAction::Kind::kNone);
  // A calm sample resets the streak...
  EXPECT_EQ(controller.on_sample(make_sample(30.0, 2)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(600.0, 2)).kind, ScaleAction::Kind::kNone);
  // ...so only the second *consecutive* breach acts.
  const ScaleAction action = controller.on_sample(make_sample(900.0, 2));
  EXPECT_EQ(action.kind, ScaleAction::Kind::kScaleUp);
  EXPECT_GT(action.predicted_backlog, 0.0);
  EXPECT_EQ(controller.scale_ups(), 1u);
}

TEST(ElasticController, CooldownQuietsTheLoopAfterAnAction) {
  ElasticController controller(controller_config());
  controller.on_sample(make_sample(600.0, 2));
  ASSERT_EQ(controller.on_sample(make_sample(600.0, 2)).kind, ScaleAction::Kind::kScaleUp);
  // cooldown_samples = 2: the next two overloaded samples are absorbed.
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 2)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 2)).kind, ScaleAction::Kind::kNone);
  // Then the hold streak must rebuild from scratch.
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 2)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 2)).kind, ScaleAction::Kind::kScaleUp);
  EXPECT_EQ(controller.scale_ups(), 2u);
}

TEST(ElasticController, SkewVetoHoldsWhenOneInstanceIsSick) {
  ElasticController controller(controller_config());
  // Deep overload, but max/mean backlog 3.0 >= skew_veto 2.5: one
  // straggler is deepening the skew, not the capacity gap. Never scale.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(controller.on_sample(make_sample(900.0, 3, 3.0)).kind, ScaleAction::Kind::kNone);
  }
  EXPECT_EQ(controller.scale_ups(), 0u);
  EXPECT_EQ(controller.skew_vetoes(), 20u);
  // The veto also resets the streak: one balanced sample is not enough.
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 3)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(900.0, 3)).kind, ScaleAction::Kind::kScaleUp);
}

TEST(ElasticController, SheddingIsAScaleUpSignalOnItsOwn) {
  ElasticController controller(controller_config());
  // Zero backlog but a climbing shed counter: tuples are being dropped, a
  // strictly stronger overload signal than any queue depth.
  ElasticSample sample = make_sample(0.0, 2);
  sample.shed = 10;
  EXPECT_EQ(controller.on_sample(sample).kind, ScaleAction::Kind::kNone);
  sample.shed = 25;
  EXPECT_EQ(controller.on_sample(sample).kind, ScaleAction::Kind::kScaleUp);
}

TEST(ElasticController, RetireBypassesCooldownAndHolds) {
  ElasticController controller(controller_config());
  controller.on_sample(make_sample(600.0, 2));
  ASSERT_EQ(controller.on_sample(make_sample(600.0, 2)).kind, ScaleAction::Kind::kScaleUp);
  // Cooldown is active, but a drained instance is the tail of a decision
  // already made: retire it now, lowest id first.
  ElasticSample sample = make_sample(900.0, 3);
  sample.drained = {5, 3};
  const ScaleAction action = controller.on_sample(sample);
  EXPECT_EQ(action.kind, ScaleAction::Kind::kRetire);
  EXPECT_EQ(action.instance, 3u);
  EXPECT_EQ(controller.retires(), 1u);
}

TEST(ElasticController, DrainRequiresCalmTrendFloorAndNoOpenDrain) {
  ElasticController controller(controller_config());
  // down_hold = 3 consecutive idle samples drain one instance.
  EXPECT_EQ(controller.on_sample(make_sample(0.0, 3)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(0.0, 3)).kind, ScaleAction::Kind::kNone);
  EXPECT_EQ(controller.on_sample(make_sample(0.0, 3)).kind, ScaleAction::Kind::kDrain);
  EXPECT_EQ(controller.drains(), 1u);

  // With a drain still open the controller never stacks another.
  ElasticController busy(controller_config());
  ElasticSample draining = make_sample(0.0, 3);
  draining.draining = 1;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(busy.on_sample(draining).kind, ScaleAction::Kind::kNone);
  }

  // And never below the floor.
  ElasticConfig floor_config = controller_config();
  floor_config.min_instances = 3;
  ElasticController floored(floor_config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(floored.on_sample(make_sample(0.0, 3)).kind, ScaleAction::Kind::kNone);
  }
}

TEST(ElasticController, ScaleUpBlockedWhileANewcomerRamps) {
  ElasticController controller(controller_config());
  ElasticSample ramping = make_sample(600.0, 2);
  ramping.ramping = 1;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.on_sample(ramping).kind, ScaleAction::Kind::kNone);
  }
  // The streak was satisfied all along: capacity landing unblocks it.
  EXPECT_EQ(controller.on_sample(make_sample(600.0, 2)).kind, ScaleAction::Kind::kScaleUp);
}

TEST(ElasticController, RespectsTheCeiling) {
  ElasticConfig config = controller_config();
  config.max_instances = 3;
  ElasticController controller(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(controller.on_sample(make_sample(900.0, 3)).kind, ScaleAction::Kind::kNone);
  }
}

TEST(ElasticController, ValidatesItsTunables) {
  ElasticConfig config = controller_config();
  config.ewma_alpha = 0.0;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
  config = controller_config();
  config.skew_veto = 1.0;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
  config = controller_config();
  config.down_backlog_per_instance = config.up_backlog_per_instance;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
  config = controller_config();
  config.min_instances = 0;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
  config = controller_config();
  config.max_instances = 2;
  config.min_instances = 3;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
  config = controller_config();
  config.up_hold = 0;
  EXPECT_THROW(ElasticController{config}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// PosgScheduler lossless drain / retire
// ---------------------------------------------------------------------------

PosgConfig posg_test_config() {
  PosgConfig config;
  config.window = 4;
  config.mu = 0.5;
  config.max_windows_per_epoch = 2;
  return config;
}

core::SketchShipment make_shipment(common::InstanceId op, const PosgConfig& config) {
  InstanceTracker tracker(op, config);
  for (int i = 0; i < 1000; ++i) {
    if (auto shipment = tracker.on_executed(1, 2.0)) {
      return *shipment;
    }
  }
  throw std::logic_error("make_shipment: tracker never stabilized");
}

/// Drives a k-instance scheduler through one complete epoch into RUN.
void drive_to_run(PosgScheduler& scheduler, const PosgConfig& config, std::size_t k) {
  for (common::InstanceId op = 0; op < k; ++op) {
    scheduler.on_sketches(make_shipment(op, config));
  }
  std::vector<core::SyncRequest> requests(k);
  for (common::SeqNo i = 0; i < k; ++i) {
    const core::Decision d = scheduler.schedule(1, i);
    if (d.sync_request) {
      requests[d.instance] = *d.sync_request;
    }
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kWaitAll);
  for (common::InstanceId op = 0; op < k; ++op) {
    scheduler.on_sync_reply({op, requests[op].epoch, 0.0});
  }
  ASSERT_EQ(scheduler.state(), PosgScheduler::State::kRun);
}

TEST(LosslessDrain, BeginDrainExcludesFromRoutingAndFreezesTheCut) {
  const auto config = posg_test_config();
  PosgScheduler scheduler(3, config);
  drive_to_run(scheduler, config, 3);
  for (common::SeqNo i = 0; i < 30; ++i) {
    scheduler.schedule(1 + i % 3, i);
  }
  const common::TimeMs cut = scheduler.begin_drain(1);
  EXPECT_DOUBLE_EQ(cut, scheduler.estimated_loads()[1]);
  EXPECT_TRUE(scheduler.is_draining(1));
  EXPECT_EQ(scheduler.serving_instances(), 2u);
  EXPECT_EQ(scheduler.draining_instances(), (std::vector<common::InstanceId>{1}));
  EXPECT_EQ(scheduler.drain_begin_count(), 1u);
  for (common::SeqNo i = 100; i < 160; ++i) {
    EXPECT_NE(scheduler.schedule(1 + i % 3, i).instance, 1u);
  }
  // The drainee's Ĉ stayed frozen at the cut while the survivors kept
  // billing.
  EXPECT_DOUBLE_EQ(scheduler.estimated_loads()[1], cut);
}

TEST(LosslessDrain, RetireBillsTheFinalDeltaOnceAndNeverRedistributes) {
  const auto config = posg_test_config();
  PosgScheduler scheduler(3, config);
  drive_to_run(scheduler, config, 3);
  for (common::SeqNo i = 0; i < 30; ++i) {
    scheduler.schedule(1 + i % 3, i);
  }
  const common::TimeMs cut = scheduler.begin_drain(1);
  const auto before = scheduler.estimated_loads();
  const common::TimeMs billed = scheduler.retire(1, 7.5);
  // Final Ĉ = cut + Δ, billed exactly once: the survivors' loads are
  // untouched (a crash would have redistributed — a drain must not, the
  // work truly ran).
  EXPECT_DOUBLE_EQ(billed, cut + 7.5);
  const auto after = scheduler.estimated_loads();
  EXPECT_DOUBLE_EQ(after[0], before[0]);
  EXPECT_DOUBLE_EQ(after[2], before[2]);
  EXPECT_EQ(scheduler.retire_count(), 1u);
  EXPECT_FALSE(scheduler.is_draining(1));
  // The retired slot is quarantined — and exactly that is the scale-up
  // path: rejoin() revives it with a seeded Ĉ and an admission ramp.
  scheduler.rejoin(1);
  EXPECT_EQ(scheduler.serving_instances(), 3u);
}

TEST(LosslessDrain, ANegativeFinalDeltaClampsAtZero) {
  // The instance measured less work than the frozen cut estimated (the
  // estimate ran hot): the final bill floors at zero, never negative.
  const auto config = posg_test_config();
  PosgScheduler scheduler(2, config);
  const common::TimeMs cut = scheduler.begin_drain(0);
  EXPECT_DOUBLE_EQ(cut, 0.0);  // ROUND_ROBIN: nothing billed yet
  EXPECT_GE(scheduler.retire(0, -5.0), 0.0);
}

TEST(LosslessDrain, ValidatesItsPreconditions) {
  const auto config = posg_test_config();
  PosgScheduler scheduler(3, config);
  EXPECT_THROW(scheduler.begin_drain(9), std::invalid_argument);   // out of range
  EXPECT_THROW(scheduler.retire(0, 0.0), std::invalid_argument);   // not draining
  scheduler.mark_failed(0);
  EXPECT_THROW(scheduler.begin_drain(0), std::invalid_argument);   // quarantined
  scheduler.begin_drain(1);
  EXPECT_THROW(scheduler.begin_drain(1), std::invalid_argument);   // already draining
  EXPECT_THROW(scheduler.begin_drain(2), std::invalid_argument);   // last serving
}

TEST(LosslessDrain, RoundRobinRotationSkipsDraining) {
  const auto config = posg_test_config();
  PosgScheduler scheduler(3, config);
  scheduler.begin_drain(1);
  for (common::SeqNo i = 0; i < 12; ++i) {
    EXPECT_NE(scheduler.schedule(7, i).instance, 1u);
  }
}

TEST(LosslessDrain, FailuresCancelDrainsWhenLivenessIsAtStake) {
  // Liveness beats planned elasticity: when every serving instance dies,
  // the draining survivor is pressed back into service.
  const auto config = posg_test_config();
  PosgScheduler scheduler(2, config);
  scheduler.begin_drain(0);
  ASSERT_EQ(scheduler.serving_instances(), 1u);
  scheduler.mark_failed(1);
  EXPECT_EQ(scheduler.drain_cancel_count(), 1u);
  EXPECT_FALSE(scheduler.is_draining(0));
  EXPECT_EQ(scheduler.serving_instances(), 1u);
  EXPECT_EQ(scheduler.schedule(7, 0).instance, 0u);
}

// ---------------------------------------------------------------------------
// Simulator autoscale mode
// ---------------------------------------------------------------------------

std::vector<common::Item> test_stream(std::size_t m) {
  std::vector<common::Item> stream(m);
  for (std::size_t i = 0; i < m; ++i) {
    stream[i] = (i * 37) % 64;
  }
  return stream;
}

common::TimeMs item_cost(common::Item item, common::InstanceId, common::SeqNo) {
  return 1.0 + static_cast<common::TimeMs>(item % 64);
}

Simulator::Config autoscale_config(std::size_t k, common::TimeMs inter_arrival) {
  Simulator::Config config;
  config.instances = k;
  config.inter_arrival = inter_arrival;
  config.data_latency = 0.0;
  config.control_latency = 1.0;
  config.posg.window = 32;
  config.posg.mu = 0.5;
  config.posg.max_windows_per_epoch = 2;
  config.elastic.enabled = true;
  config.elastic.min_instances = 1;
  config.elastic.max_instances = k;
  config.elastic_sample_period = 20.0;
  return config;
}

TEST(SimulatorElastic, FlashCrowdAutoscaleMeetsLatencyAtLowerCost) {
  // The acceptance benchmark (fixed seed, fully deterministic): a ×20
  // flash crowd against (a) autoscale from 2 of 6 instances and (b) static
  // peak provisioning (all 6 up the whole run). Autoscale must land within
  // 2× of static-peak p99 completion latency while spending strictly fewer
  // instance-milliseconds.
  const std::size_t k = 6;
  const auto stream = test_stream(4000);

  auto elastic_config = autoscale_config(k, 40.0);
  elastic_config.initial_instances = 2;
  elastic_config.elastic.up_backlog_per_instance = 120.0;
  elastic_config.elastic.down_backlog_per_instance = 10.0;
  elastic_config.elastic.up_hold = 2;
  elastic_config.elastic.cooldown_samples = 2;
  elastic_config.arrival_profile.kind = workload::ArrivalProfile::Kind::kFlashCrowd;
  elastic_config.arrival_profile.spike_factor = 20.0;
  elastic_config.arrival_profile.spike_start = 20'000.0;
  elastic_config.arrival_profile.spike_duration = 2'000.0;

  PosgScheduler elastic_scheduler(k, elastic_config.posg);
  Simulator elastic_sim(elastic_config, item_cost);
  const auto elastic = elastic_sim.run(stream, elastic_scheduler);

  auto static_config = autoscale_config(k, 40.0);
  static_config.elastic.enabled = false;
  static_config.arrival_profile = elastic_config.arrival_profile;
  PosgScheduler static_scheduler(k, static_config.posg);
  Simulator static_sim(static_config, item_cost);
  const auto fixed = static_sim.run(stream, static_scheduler);

  ASSERT_EQ(elastic.completions.size(), stream.size());
  ASSERT_EQ(fixed.completions.size(), stream.size());

  const double elastic_p99 = metrics::percentile(elastic.completions.values(), 0.99);
  const double static_p99 = metrics::percentile(fixed.completions.values(), 0.99);
  EXPECT_LE(elastic_p99, 2.0 * static_p99)
      << "autoscale p99 " << elastic_p99 << " vs static-peak p99 " << static_p99;

  // The whole point of elasticity: fewer instance-seconds than static
  // peak provisioning (which pays k × makespan by definition).
  EXPECT_DOUBLE_EQ(fixed.instance_ms, static_cast<double>(k) * fixed.makespan);
  EXPECT_LT(elastic.instance_ms, fixed.instance_ms);

  // The crowd forced real growth.
  const auto scaled_up = std::count_if(
      elastic.scale_events.begin(), elastic.scale_events.end(),
      [](const auto& event) { return event.action.kind == ScaleAction::Kind::kScaleUp; });
  EXPECT_GE(scaled_up, 1);
}

TEST(SimulatorElastic, ScaleDownDrainsLosslesslyAndRetires) {
  // Light steady load on 4 serving instances: the controller drains down
  // toward the floor, every drain is followed by a retirement, and not a
  // single tuple is lost or double-executed on the way.
  const std::size_t k = 4;
  const auto stream = test_stream(2000);
  auto config = autoscale_config(k, 60.0);
  config.elastic.up_backlog_per_instance = 500.0;
  config.elastic.down_backlog_per_instance = 40.0;
  config.elastic.down_hold = 4;
  PosgScheduler scheduler(k, config.posg);
  Simulator sim(config, item_cost);
  const auto result = sim.run(stream, scheduler);

  // Lossless: every injected tuple completed exactly once, and the total
  // executed work is exactly the stream's total cost.
  ASSERT_EQ(result.completions.size(), stream.size());
  double expected_work = 0.0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    expected_work += item_cost(stream[i], 0, i);
  }
  const double executed_work =
      std::accumulate(result.instance_work.begin(), result.instance_work.end(), 0.0);
  EXPECT_NEAR(executed_work, expected_work, 1e-6);

  std::size_t drains = 0;
  std::size_t retires = 0;
  for (const auto& event : result.scale_events) {
    if (event.action.kind == ScaleAction::Kind::kDrain) {
      ++drains;
    }
    if (event.action.kind == ScaleAction::Kind::kRetire) {
      ++retires;
      EXPECT_NE(event.action.instance, common::kNoInstance);
    }
  }
  EXPECT_GE(drains, 1u);
  EXPECT_EQ(drains, retires);  // every drain completed with a retirement
  EXPECT_EQ(scheduler.retire_count(), retires);
  // Fewer instance-seconds than static provisioning of the same run.
  EXPECT_LT(result.instance_ms, static_cast<double>(k) * result.makespan);
}

TEST(SimulatorElastic, GrayFaultStutterWithSteadyLoadNeverScales) {
  // No flapping: a steady, well-provisioned load where one instance
  // stutters (×8 cost in alternating windows). The stutter deepens the
  // queue *skew*, not the aggregate trend; the skew veto plus the floor
  // must keep the scale-action log empty.
  const std::size_t k = 3;
  const auto stream = test_stream(3000);
  auto config = autoscale_config(k, 15.0);
  config.elastic.min_instances = k;  // floor = current: drains are out
  config.elastic.up_backlog_per_instance = 200.0;
  config.elastic.skew_veto = 2.5;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Simulator sim(config, [](common::Item item, common::InstanceId op, common::SeqNo seq) {
    const double base = 1.0 + static_cast<double>(item % 64);
    const bool stutter_window = (seq / 200) % 2 == 1;
    return (op == 2 && stutter_window) ? base * 8.0 : base;
  });
  PosgScheduler scheduler(k, config.posg);
  const auto result = sim.run(stream, scheduler);
  ASSERT_EQ(result.completions.size(), stream.size());
  EXPECT_TRUE(result.scale_events.empty());
  const auto snapshot = registry.snapshot();
  EXPECT_EQ(snapshot.counters.at("posg.sim.scale_ups"), 0u);
  EXPECT_EQ(snapshot.counters.at("posg.sim.drains"), 0u);
}

TEST(SimulatorElastic, AutoscaleRequiresAPosgScheduler) {
  const auto stream = test_stream(10);
  auto config = autoscale_config(2, 10.0);
  Simulator sim(config, item_cost);
  core::RoundRobinScheduler rr(2);
  EXPECT_THROW(sim.run(stream, rr), std::invalid_argument);
}

TEST(SimulatorElastic, StaticRunChargesExactlyKTimesMakespan) {
  auto config = autoscale_config(2, 10.0);
  config.elastic.enabled = false;
  Simulator sim(config, item_cost);
  PosgScheduler scheduler(2, config.posg);
  const auto result = sim.run(test_stream(200), scheduler);
  EXPECT_DOUBLE_EQ(result.instance_ms, 2.0 * result.makespan);
}

// ---------------------------------------------------------------------------
// Arrival profiles (workload/arrival.hpp)
// ---------------------------------------------------------------------------

TEST(ArrivalProfile, ConstantIsTheIdentity) {
  workload::ArrivalProfile profile;
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(0.0), 1.0);
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(12'345.6), 1.0);
}

TEST(ArrivalProfile, DiurnalPeaksAtAQuarterPeriod) {
  workload::ArrivalProfile profile;
  profile.kind = workload::ArrivalProfile::Kind::kDiurnal;
  profile.amplitude = 0.5;
  profile.period = 1000.0;
  profile.validate();
  EXPECT_NEAR(profile.rate_multiplier(0.0), 1.0, 1e-9);
  EXPECT_NEAR(profile.rate_multiplier(250.0), 1.5, 1e-9);   // sin peak
  EXPECT_NEAR(profile.rate_multiplier(750.0), 0.5, 1e-9);   // sin trough
  EXPECT_NEAR(profile.rate_multiplier(1250.0), 1.5, 1e-9);  // periodic
}

TEST(ArrivalProfile, FlashCrowdMultipliesOnlyInsideTheWindow) {
  workload::ArrivalProfile profile;
  profile.kind = workload::ArrivalProfile::Kind::kFlashCrowd;
  profile.spike_factor = 20.0;
  profile.spike_start = 100.0;
  profile.spike_duration = 50.0;
  profile.validate();
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(99.9), 1.0);
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(100.0), 20.0);
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(149.9), 20.0);
  EXPECT_DOUBLE_EQ(profile.rate_multiplier(150.0), 1.0);
}

TEST(ArrivalProfile, ValidatesItsParameters) {
  workload::ArrivalProfile diurnal;
  diurnal.kind = workload::ArrivalProfile::Kind::kDiurnal;
  diurnal.amplitude = 1.0;  // would let the rate touch zero
  EXPECT_THROW(diurnal.validate(), std::invalid_argument);
  diurnal.amplitude = 0.5;
  diurnal.period = 0.0;
  EXPECT_THROW(diurnal.validate(), std::invalid_argument);
  workload::ArrivalProfile flash;
  flash.kind = workload::ArrivalProfile::Kind::kFlashCrowd;
  flash.spike_factor = 0.0;
  EXPECT_THROW(flash.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Boundary behavior of the degradation-layer neighbors
// ---------------------------------------------------------------------------

TEST(HealthBoundary, RePromotionFiresAtExactlyThePromoteThreshold) {
  core::HealthConfig config;  // promote_drift 1.2, promote_epochs 2
  core::HealthMonitor monitor(2, config);
  // Exactly at degrade_drift counts toward degradation ("at or above").
  monitor.on_epoch_drift(0, config.degrade_drift);
  monitor.on_epoch_drift(0, config.degrade_drift);
  ASSERT_EQ(monitor.state(0), core::InstanceHealth::kDegraded);
  // Exactly at promote_drift counts as calm ("at or below") — but one
  // calm epoch is not enough.
  monitor.on_epoch_drift(0, config.promote_drift);
  EXPECT_EQ(monitor.state(0), core::InstanceHealth::kDegraded);
  monitor.on_epoch_drift(0, config.promote_drift);
  EXPECT_EQ(monitor.state(0), core::InstanceHealth::kLive);
  EXPECT_EQ(monitor.promotions(), 1u);
  EXPECT_DOUBLE_EQ(monitor.derate(0), 1.0);  // full billing restored
}

TEST(HealthBoundary, AnEpochJustAboveThePromoteThresholdResetsTheCalmStreak) {
  core::HealthConfig config;
  core::HealthMonitor monitor(1, config);
  monitor.on_epoch_drift(0, config.degrade_drift);
  monitor.on_epoch_drift(0, config.degrade_drift);
  ASSERT_EQ(monitor.state(0), core::InstanceHealth::kDegraded);
  monitor.on_epoch_drift(0, config.promote_drift);
  // Nudge just above promote (still below suspect): ambiguous, streak
  // resets — the two calm epochs must be *consecutive*.
  monitor.on_epoch_drift(0, config.promote_drift + 1e-9);
  monitor.on_epoch_drift(0, config.promote_drift);
  EXPECT_EQ(monitor.state(0), core::InstanceHealth::kDegraded);
  monitor.on_epoch_drift(0, config.promote_drift);
  EXPECT_EQ(monitor.state(0), core::InstanceHealth::kLive);
}

TEST(OverloadBoundary, ShedReentersAfterADrainToTheLowWatermark) {
  core::OverloadConfig config;
  config.enabled = true;
  config.high_watermark = 0.9;
  config.low_watermark = 0.5;
  config.deadline_samples = 3;
  core::OverloadController controller(config);
  // Enter: three consecutive saturated samples.
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_TRUE(controller.sample(0.95));
  EXPECT_EQ(controller.entries(), 1u);
  // Above the low watermark: still shedding (hysteresis).
  EXPECT_TRUE(controller.sample(0.6));
  // Exactly at the low watermark: the drain completes, shed mode exits.
  EXPECT_FALSE(controller.sample(0.5));
  EXPECT_EQ(controller.exits(), 1u);
  // Re-entry needs the full deadline streak again — the drain reset it.
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_FALSE(controller.sample(0.95));
  EXPECT_TRUE(controller.sample(0.95));
  EXPECT_EQ(controller.entries(), 2u);
  EXPECT_EQ(controller.exits(), 1u);
  controller.debug_validate();
}

TEST(OverloadBoundary, ExactlyAtTheHighWatermarkCountsAsSaturated) {
  core::OverloadConfig config;
  config.enabled = true;
  config.deadline_samples = 2;
  core::OverloadController controller(config);
  EXPECT_FALSE(controller.sample(config.high_watermark));
  EXPECT_TRUE(controller.sample(config.high_watermark));
}

}  // namespace
