#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace posg::bench {

Summary summarize(const std::vector<double>& samples) {
  common::require(!samples.empty(), "summarize: empty sample");
  Summary summary;
  summary.min = *std::min_element(samples.begin(), samples.end());
  summary.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double s : samples) {
    sum += s;
  }
  summary.mean = sum / static_cast<double>(samples.size());
  return summary;
}

Summary seeded_average_completion(const sim::ExperimentConfig& base, sim::Policy policy,
                                  std::size_t seeds) {
  return summarize(sim::run_seeded(base, policy, seeds));
}

Summary seeded_speedup(const sim::ExperimentConfig& base, std::size_t seeds) {
  std::vector<double> speedups;
  speedups.reserve(seeds);
  for (std::size_t s = 0; s < seeds; ++s) {
    sim::ExperimentConfig config = base;
    config.stream_seed = base.stream_seed + 1000 * s + 17;
    config.assignment_seed = base.assignment_seed + 1000 * s + 71;
    sim::Experiment experiment(config);
    const double rr = experiment.run(sim::Policy::kRoundRobin).average_completion;
    const double posg = experiment.run(sim::Policy::kPosg).average_completion;
    speedups.push_back(rr / posg);
  }
  return summarize(speedups);
}

void ShapeChecks::check(const std::string& name, bool ok, const std::string& detail) {
  std::printf("# shape-check: %-40s %s  (%s)\n", name.c_str(), ok ? "PASS" : "FAIL",
              detail.c_str());
  if (!ok) {
    ++failures_;
  }
}

int ShapeChecks::exit_code() const { return failures_ == 0 ? 0 : 1; }

void print_header(const std::string& figure, const std::string& claim) {
  std::printf("==========================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("==========================================================================\n");
}

std::string output_dir(const common::CliArgs& args) {
  const std::string dir = args.get_string("out", "bench_results");
  std::filesystem::create_directories(dir);
  return dir;
}

}  // namespace posg::bench
