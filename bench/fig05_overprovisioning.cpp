// Figure 5: completion-time speedup of POSG over round-robin as a function
// of the percentage of over-provisioning.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 10));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 5 — speedup vs percentage of over-provisioning",
      "speedup ~1 when strongly undersized (95-98%), peaks near 100-109% (paper: mean >=1.15, "
      "peak 1.26 at 102%), still >1 when largely oversized (115%)");

  common::CsvWriter csv(bench::output_dir(args) + "/fig05_overprovisioning.csv",
                        {"overprovisioning_pct", "speedup_mean", "speedup_min", "speedup_max"});

  const std::vector<double> points{0.95, 0.97, 0.98, 1.0, 1.02, 1.05, 1.07, 1.09, 1.12, 1.15};
  std::vector<bench::Summary> summaries;
  std::printf("%8s | %8s %8s %8s\n", "overprov", "min", "mean", "max");
  for (double overprovisioning : points) {
    sim::ExperimentConfig config;
    config.m = m;
    config.overprovisioning = overprovisioning;
    const auto summary = bench::seeded_speedup(config, seeds);
    summaries.push_back(summary);
    std::printf("%7.0f%% | %8.3f %8.3f %8.3f\n", overprovisioning * 100, summary.min,
                summary.mean, summary.max);
    csv.row_values(overprovisioning * 100, summary.mean, summary.min, summary.max);
  }

  bench::ShapeChecks checks;
  const auto& undersized = summaries[0];   // 95%
  const auto& at_capacity = summaries[3];  // 100%
  const auto& oversized = summaries.back();  // 115%
  checks.check("undersized ~ parity", undersized.mean > 0.93 && undersized.mean < 1.1,
               "mean@95%=" + std::to_string(undersized.mean));
  checks.check("peak in the correctly-sized band", at_capacity.mean >= 1.15,
               "mean@100%=" + std::to_string(at_capacity.mean));
  checks.check("oversized still >= ~1", oversized.mean >= 1.0,
               "mean@115%=" + std::to_string(oversized.mean));
  checks.check("peak exceeds oversized tail", at_capacity.mean > oversized.mean,
               "peak=" + std::to_string(at_capacity.mean) +
                   " tail=" + std::to_string(oversized.mean));
  return checks.exit_code();
}
