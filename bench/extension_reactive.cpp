// Extension E2 — proactive vs reactive (the introduction's argument).
//
// Sec. I: "Another common alternative is to periodically collect at the
// scheduler the load of the operator instances. However, this solution
// only allows for reactive scheduling, where input tuples are scheduled
// on the basis of a previous, possibly stale, load state."
//
// This harness makes that claim quantitative: reactive join-shortest-
// queue with queue reports every T against POSG, sweeping the report
// period. It also places two stronger reference points: power-of-two-
// choices with an exact cost oracle, and the full backlog oracle.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Extension E2 — proactive (POSG) vs reactive (JSQ with stale reports)",
      "reactive scheduling degrades as its reports get staler; POSG pays control traffic only "
      "when the load profile changes and does not depend on a polling period");

  common::CsvWriter csv(bench::output_dir(args) + "/extension_reactive.csv",
                        {"report_period_ms", "L_reactive_jsq", "L_posg", "L_round_robin",
                         "L_two_choices_oracle", "L_backlog_oracle"});

  // Baselines that do not depend on the report period.
  sim::ExperimentConfig base;
  base.m = m;
  const auto rr = bench::seeded_average_completion(base, sim::Policy::kRoundRobin, seeds);
  const auto posg = bench::seeded_average_completion(base, sim::Policy::kPosg, seeds);
  const auto two_choices =
      bench::seeded_average_completion(base, sim::Policy::kTwoChoices, seeds);
  const auto backlog = bench::seeded_average_completion(base, sim::Policy::kBacklogOracle, seeds);
  std::printf("period-independent means: RR %.1f | POSG %.1f | two-choices(oracle) %.1f | "
              "backlog-oracle %.1f\n\n",
              rr.mean, posg.mean, two_choices.mean, backlog.mean);

  std::printf("%12s | %14s | vs POSG\n", "period (ms)", "reactive JSQ L");
  std::vector<std::pair<double, double>> sweep;
  for (double period : {2.0, 8.0, 32.0, 128.0, 512.0, 2048.0}) {
    sim::ExperimentConfig config = base;
    config.load_report_period = period;
    const auto jsq = bench::seeded_average_completion(config, sim::Policy::kReactiveJsq, seeds);
    sweep.emplace_back(period, jsq.mean);
    std::printf("%12.0f | %14.1f | %6.3f\n", period, jsq.mean, jsq.mean / posg.mean);
    csv.row_values(period, jsq.mean, posg.mean, rr.mean, two_choices.mean, backlog.mean);
  }

  bench::ShapeChecks checks;
  checks.check("fresh reports beat stale reports", sweep.front().second < sweep.back().second,
               "2ms=" + std::to_string(sweep.front().second) +
                   " 2048ms=" + std::to_string(sweep.back().second));
  checks.check("POSG beats JSQ at coarse periods", posg.mean < sweep.back().second,
               "posg=" + std::to_string(posg.mean) +
                   " jsq@2048ms=" + std::to_string(sweep.back().second));
  checks.check("POSG beats round-robin", posg.mean < rr.mean,
               "posg=" + std::to_string(posg.mean) + " rr=" + std::to_string(rr.mean));
  checks.check("oracle baselines bound POSG", backlog.mean <= posg.mean * 1.02,
               "backlog=" + std::to_string(backlog.mean) +
                   " posg=" + std::to_string(posg.mean));
  return checks.exit_code();
}
