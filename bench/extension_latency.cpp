// Extension E1 (the paper's Sec. VII future work): latency-aware greedy.
//
// Two of the five instances sit behind a higher data-path latency
// (remote rack). The latency-oblivious greedy treats all instances alike
// and pays the remote hop for ~40% of tuples; the latency-aware variant
// biases placement toward close instances whenever their estimated load
// allows it.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Extension E1 — latency-aware greedy (paper Sec. VII future work)",
      "with heterogeneous data-path latencies, biasing the greedy pick by the per-instance "
      "latency must not hurt, and should help when the system has slack");

  common::CsvWriter csv(bench::output_dir(args) + "/extension_latency.csv",
                        {"overprovisioning", "remote_latency_ms", "L_rr", "L_posg",
                         "L_posg_latency_aware"});

  bench::ShapeChecks checks;
  std::printf("%9s %9s | %10s %10s %14s | %s\n", "overprov", "remote ms", "RR", "POSG",
              "POSG+latency", "aware/oblivious");
  for (double overprovisioning : {1.0, 1.1, 1.3}) {
    for (double remote_latency : {10.0, 40.0}) {
      metrics::RunningStats rr_stats;
      metrics::RunningStats posg_stats;
      metrics::RunningStats aware_stats;
      for (std::size_t s = 0; s < seeds; ++s) {
        sim::ExperimentConfig config;
        config.m = m;
        config.overprovisioning = overprovisioning;
        config.instance_latencies = {0.0, 0.0, 0.0, remote_latency, remote_latency};
        config.stream_seed = 1000 * s + 17;
        config.assignment_seed = 1000 * s + 71;

        sim::Experiment experiment(config);
        rr_stats.add(experiment.run(sim::Policy::kRoundRobin).average_completion);
        posg_stats.add(experiment.run(sim::Policy::kPosg).average_completion);

        auto aware_config = config;
        aware_config.posg_latency_hints = true;
        sim::Experiment aware(aware_config);
        aware_stats.add(aware.run(sim::Policy::kPosg).average_completion);
      }
      const double ratio = aware_stats.mean() / posg_stats.mean();
      std::printf("%8.0f%% %9.0f | %10.1f %10.1f %14.1f | %.3f\n", overprovisioning * 100,
                  remote_latency, rr_stats.mean(), posg_stats.mean(), aware_stats.mean(), ratio);
      csv.row_values(overprovisioning, remote_latency, rr_stats.mean(), posg_stats.mean(),
                     aware_stats.mean());
      checks.check("latency hints never hurt much (prov=" + std::to_string(overprovisioning) +
                       ", lat=" + std::to_string(remote_latency) + ")",
                   ratio < 1.1, "aware/oblivious=" + std::to_string(ratio));
      if (overprovisioning >= 1.3) {
        checks.check("latency hints help under slack (lat=" + std::to_string(remote_latency) +
                         ")",
                     ratio < 1.0, "aware/oblivious=" + std::to_string(ratio));
      }
    }
  }
  return checks.exit_code();
}
