// Figure 4: average per-tuple completion time L for POSG, Round-Robin and
// Full-Knowledge under Uniform and Zipf-{0.5..3.0} frequency distributions.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 10));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 4 — completion time vs frequency distribution",
      "FK <= POSG <= RR everywhere; gain small (~6%) for uniform/Zipf-0.5, large from "
      "Zipf-1.0 on; POSG approaches FK at high skew");

  common::CsvWriter csv(bench::output_dir(args) + "/fig04_distributions.csv",
                        {"distribution", "policy", "L_mean_ms", "L_min_ms", "L_max_ms"});

  const std::vector<std::string> distributions{"uniform",  "zipf-0.5", "zipf-1.0", "zipf-1.5",
                                               "zipf-2.0", "zipf-2.5", "zipf-3.0"};
  struct Row {
    std::string distribution;
    bench::Summary rr, posg, fk;
  };
  std::vector<Row> rows;

  std::printf("%-10s | %26s | %26s | %26s | %7s\n", "dist", "Round-Robin L (min/mean/max)",
              "POSG L (min/mean/max)", "Full-Knowledge L", "speedup");
  for (const auto& distribution : distributions) {
    sim::ExperimentConfig config;
    config.m = m;
    config.distribution = distribution;
    Row row;
    row.distribution = distribution;
    row.rr = bench::seeded_average_completion(config, sim::Policy::kRoundRobin, seeds);
    row.posg = bench::seeded_average_completion(config, sim::Policy::kPosg, seeds);
    row.fk = bench::seeded_average_completion(config, sim::Policy::kFullKnowledge, seeds);
    rows.push_back(row);
    std::printf("%-10s | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %7.3f\n",
                distribution.c_str(), row.rr.min, row.rr.mean, row.rr.max, row.posg.min,
                row.posg.mean, row.posg.max, row.fk.min, row.fk.mean, row.fk.max,
                row.rr.mean / row.posg.mean);
    csv.row_values(distribution, "round-robin", row.rr.mean, row.rr.min, row.rr.max);
    csv.row_values(distribution, "posg", row.posg.mean, row.posg.min, row.posg.max);
    csv.row_values(distribution, "full-knowledge", row.fk.mean, row.fk.min, row.fk.max);
  }

  bench::ShapeChecks checks;
  for (const auto& row : rows) {
    checks.check("FK <= POSG (" + row.distribution + ")", row.fk.mean <= row.posg.mean * 1.05,
                 "fk=" + std::to_string(row.fk.mean) + " posg=" + std::to_string(row.posg.mean));
    checks.check("POSG <= RR (" + row.distribution + ")", row.posg.mean <= row.rr.mean * 1.05,
                 "posg=" + std::to_string(row.posg.mean) + " rr=" + std::to_string(row.rr.mean));
  }
  const double low_skew_gain = rows[0].rr.mean / rows[0].posg.mean;   // uniform
  const double zipf1_gain = rows[2].rr.mean / rows[2].posg.mean;      // zipf-1.0
  checks.check("gain grows with skew", zipf1_gain > low_skew_gain,
               "uniform=" + std::to_string(low_skew_gain) +
                   " zipf1=" + std::to_string(zipf1_gain));
  checks.check("zipf-1.0 gain sizeable (paper: >=25%)", zipf1_gain >= 1.2,
               "speedup=" + std::to_string(zipf1_gain));
  return checks.exit_code();
}
