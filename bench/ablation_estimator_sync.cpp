// Ablation A2: the estimator variant (Listing III.2's argmin-F cell vs
// the min-over-rows ratio), shared vs per-instance billing, and the
// synchronization protocol on/off.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 6));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Ablation A2 — estimator variant, billing source, synchronization",
      "the marker/Δ synchronization and instance-independent billing both carry weight; the "
      "two cell-selection variants are close");

  common::CsvWriter csv(bench::output_dir(args) + "/ablation_estimator_sync.csv",
                        {"variant", "speedup_mean", "speedup_min", "speedup_max"});

  struct Case {
    std::string name;
    sim::ExperimentConfig config;
  };
  std::vector<Case> cases;
  {
    Case base;
    base.name = "default (argmin-F, shared billing, sync on)";
    base.config.m = m;
    cases.push_back(base);

    Case min_ratio = base;
    min_ratio.name = "min-ratio estimator";
    min_ratio.config.posg.estimator = sketch::EstimatorVariant::kMinRatio;
    cases.push_back(min_ratio);

    Case per_instance = base;
    per_instance.name = "per-instance billing (Listing III.2)";
    per_instance.config.posg.shared_billing = false;
    cases.push_back(per_instance);

    Case no_sync = base;
    no_sync.name = "sync disabled";
    no_sync.config.posg.sync_enabled = false;
    cases.push_back(no_sync);

    Case conservative = base;
    conservative.name = "conservative Count-Min updates";
    conservative.config.posg.conservative_update = true;
    cases.push_back(conservative);

    Case neither = base;
    neither.name = "per-instance billing + sync disabled";
    neither.config.posg.shared_billing = false;
    neither.config.posg.sync_enabled = false;
    cases.push_back(neither);
  }

  std::vector<bench::Summary> results;
  std::printf("%-45s | %8s %8s %8s\n", "variant", "min", "mean", "max");
  for (const auto& test_case : cases) {
    const auto summary = bench::seeded_speedup(test_case.config, seeds);
    results.push_back(summary);
    std::printf("%-45s | %8.3f %8.3f %8.3f\n", test_case.name.c_str(), summary.min, summary.mean,
                summary.max);
    csv.row_values(test_case.name, summary.mean, summary.min, summary.max);
  }

  bench::ShapeChecks checks;
  checks.check("default configuration is a win", results[0].mean > 1.2,
               "mean=" + std::to_string(results[0].mean));
  checks.check("sync carries weight", results[0].mean >= results[3].mean * 0.95,
               "with=" + std::to_string(results[0].mean) +
                   " without=" + std::to_string(results[3].mean));
  checks.check("estimator variants are close",
               std::abs(results[0].mean - results[1].mean) < 0.35,
               "argminF=" + std::to_string(results[0].mean) +
                   " minratio=" + std::to_string(results[1].mean));
  return checks.exit_code();
}
