// Ablation A1: sensitivity of POSG to the window size N, the stability
// tolerance mu, and the liveness cap — the calibration knobs DESIGN.md §5
// documents. Not a paper figure; it substantiates the repository's
// parameter choices.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 6));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Ablation A1 — window size N, tolerance mu, liveness cap",
      "smaller windows synchronize more often and bound estimation drift; the liveness cap "
      "keeps POSG out of permanent ROUND_ROBIN on hard universes");

  common::CsvWriter csv(bench::output_dir(args) + "/ablation_window_mu.csv",
                        {"window", "mu", "cap", "speedup_mean", "speedup_min", "speedup_max"});

  bench::ShapeChecks checks;
  std::printf("%8s %6s %5s | %8s %8s %8s\n", "window N", "mu", "cap", "min", "mean", "max");

  std::vector<std::pair<std::size_t, bench::Summary>> window_sweep;
  for (std::size_t window : {64, 128, 256, 512, 1024, 2048}) {
    sim::ExperimentConfig config;
    config.m = m;
    config.posg.window = window;
    const auto summary = bench::seeded_speedup(config, seeds);
    window_sweep.emplace_back(window, summary);
    std::printf("%8zu %6.2f %5zu | %8.3f %8.3f %8.3f\n", window, config.posg.mu,
                config.posg.max_windows_per_epoch, summary.min, summary.mean, summary.max);
    csv.row_values(window, config.posg.mu, config.posg.max_windows_per_epoch, summary.mean,
                   summary.min, summary.max);
  }
  checks.check("moderate windows beat huge windows",
               window_sweep[2].second.mean > window_sweep.back().second.mean,
               "N=256 -> " + std::to_string(window_sweep[2].second.mean) + ", N=2048 -> " +
                   std::to_string(window_sweep.back().second.mean));

  std::printf("---- mu sweep (N = 256) ----\n");
  for (double mu : {0.01, 0.05, 0.2, 0.5, 2.0}) {
    sim::ExperimentConfig config;
    config.m = m;
    config.posg.mu = mu;
    const auto summary = bench::seeded_speedup(config, seeds);
    std::printf("%8zu %6.2f %5zu | %8.3f %8.3f %8.3f\n", config.posg.window, mu,
                config.posg.max_windows_per_epoch, summary.min, summary.mean, summary.max);
    csv.row_values(config.posg.window, mu, config.posg.max_windows_per_epoch, summary.mean,
                   summary.min, summary.max);
  }

  std::printf("---- liveness cap sweep (strict paper rule = cap 0) ----\n");
  std::vector<std::pair<std::size_t, bench::Summary>> cap_sweep;
  for (std::size_t cap : {std::size_t{0}, std::size_t{2}, std::size_t{4}, std::size_t{8},
                          std::size_t{16}}) {
    sim::ExperimentConfig config;
    config.m = m;
    config.posg.max_windows_per_epoch = cap;
    const auto summary = bench::seeded_speedup(config, seeds);
    cap_sweep.emplace_back(cap, summary);
    std::printf("%8zu %6.2f %5zu | %8.3f %8.3f %8.3f\n", config.posg.window, config.posg.mu, cap,
                summary.min, summary.mean, summary.max);
    csv.row_values(config.posg.window, config.posg.mu, cap, summary.mean, summary.min,
                   summary.max);
  }
  checks.check("default cap is not worse than strict paper rule",
               cap_sweep[3].second.mean >= cap_sweep[0].second.mean * 0.9,
               "cap8=" + std::to_string(cap_sweep[3].second.mean) +
                   " cap0=" + std::to_string(cap_sweep[0].second.mean));
  return checks.exit_code();
}
