// Extension E3 — hybrid estimator: exact Space-Saving head + Count-Min
// tail (see sketch/space_saving.hpp).
//
// The calibration note (DESIGN.md §5) identified two bottlenecks for the
// paper's stated parameters: estimate quality (ε = 0.05 → 54 columns)
// and synchronization cadence (N = 1024). This harness separates them:
// exact heavy-hitter tracking substitutes for sketch columns — a 5-column
// sketch plus 256 exact counters performs like the calibrated 544-column
// sketch at roughly a third of the memory — but no estimator fixes the
// cadence bottleneck, so N = 1024 stays near parity even with the hybrid.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Extension E3 — hybrid estimator (Space-Saving head + sketch tail)",
      "exact heavy-hitter tracking recovers most of the gain a coarse sketch loses; at the "
      "paper's stated (eps = 0.05, N = 1024) the hybrid turns parity into a win");

  common::CsvWriter csv(bench::output_dir(args) + "/extension_hybrid.csv",
                        {"config", "heavy_capacity", "speedup_mean", "speedup_min",
                         "speedup_max"});

  struct Case {
    std::string name;
    double epsilon;
    std::size_t window;
    std::size_t capacity;
  };
  const std::vector<Case> cases{
      {"paper params, pure sketch", 0.05, 1024, 0},
      {"paper params + hh 256", 0.05, 1024, 256},
      {"paper eps, N=256, pure", 0.05, 256, 0},
      {"paper eps, N=256 + hh 256", 0.05, 256, 256},
      {"calibrated, pure sketch", 0.005, 256, 0},
      {"coarse eps=0.5 + hh 256", 0.5, 256, 256},
  };

  bench::ShapeChecks checks;
  std::vector<bench::Summary> results;
  std::printf("%-28s | %8s %8s %8s\n", "configuration", "min", "mean", "max");
  for (const auto& test_case : cases) {
    sim::ExperimentConfig config;
    config.m = m;
    config.posg.epsilon = test_case.epsilon;
    config.posg.window = test_case.window;
    config.posg.heavy_hitter_capacity = test_case.capacity;
    const auto summary = bench::seeded_speedup(config, seeds);
    results.push_back(summary);
    std::printf("%-28s | %8.3f %8.3f %8.3f\n", test_case.name.c_str(), summary.min,
                summary.mean, summary.max);
    csv.row_values(test_case.name, test_case.capacity, summary.mean, summary.min, summary.max);
  }

  // Cadence bottleneck: at N = 1024 even the hybrid stays near parity.
  checks.check("hybrid cannot fix the N=1024 cadence", results[1].mean < 1.15,
               "mean=" + std::to_string(results[1].mean));
  // Estimator bottleneck: at N = 256, adding the heavy table to the
  // paper's 54-column sketch buys a real improvement...
  checks.check("hh table improves paper-eps at N=256",
               results[3].mean > results[2].mean + 0.02,
               "pure=" + std::to_string(results[2].mean) +
                   " hybrid=" + std::to_string(results[3].mean));
  // ...and even a 5-column sketch plus the table performs like the
  // calibrated 544-column sketch (memory: ~10 KB vs ~35 KB).
  checks.check("coarse sketch + hh matches calibrated",
               results[5].mean > results[4].mean - 0.15,
               "hybrid=" + std::to_string(results[5].mean) +
                   " calibrated=" + std::to_string(results[4].mean));
  return checks.exit_code();
}
