// Figure 9: completion-time speedup vs the sketch precision parameter
// epsilon (which fixes the number of Count-Min columns).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "sketch/count_min.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 9 — speedup vs precision parameter epsilon",
      "speedup grows as epsilon shrinks (paper: ~+30% per 10x memory); large epsilon "
      "underperforms round-robin");

  common::CsvWriter csv(bench::output_dir(args) + "/fig09_epsilon.csv",
                        {"epsilon", "columns", "speedup_mean", "speedup_min", "speedup_max"});

  const std::vector<double> epsilons{1.0, 0.5, 0.1, 0.05, 0.01, 0.005, 0.001};
  std::vector<bench::Summary> summaries;
  std::printf("%8s %8s | %8s %8s %8s\n", "epsilon", "columns", "min", "mean", "max");
  for (double epsilon : epsilons) {
    sim::ExperimentConfig config;
    config.m = m;
    config.posg.epsilon = epsilon;
    const auto dims = sketch::SketchDims::from_accuracy(epsilon, config.posg.delta);
    const auto summary = bench::seeded_speedup(config, seeds);
    summaries.push_back(summary);
    std::printf("%8.3f %8zu | %8.3f %8.3f %8.3f\n", epsilon, dims.cols, summary.min,
                summary.mean, summary.max);
    csv.row_values(epsilon, dims.cols, summary.mean, summary.min, summary.max);
  }

  bench::ShapeChecks checks;
  checks.check("finest epsilon beats coarsest", summaries.back().mean > summaries.front().mean,
               "eps=1.0 -> " + std::to_string(summaries.front().mean) + ", eps=0.001 -> " +
                   std::to_string(summaries.back().mean));
  checks.check("fine epsilon provides real gain", summaries.back().mean >= 1.2,
               "mean@0.001=" + std::to_string(summaries.back().mean));
  // Deviation note (EXPERIMENTS.md): the paper reports epsilon = 1.0
  // *below* parity; our shared-billing + liveness-cap extensions keep even
  // a 3-column sketch above round-robin, so the check asserts only that
  // memory buys a materially larger gain.
  checks.check("memory buys gain (>= +0.15 from eps=1.0 to 0.001)",
               summaries.back().mean >= summaries.front().mean + 0.15,
               "mean@1.0=" + std::to_string(summaries.front().mean) +
                   " mean@0.001=" + std::to_string(summaries.back().mean));
  return checks.exit_code();
}
