// Micro-benchmarks (google-benchmark) for the per-tuple fast paths whose
// asymptotic costs Theorems 3.1/3.2 state: hash evaluation, sketch update
// and query, scheduler submit, tracker update.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "core/elastic.hpp"
#include "core/instance_tracker.hpp"
#include "core/multi_source.hpp"
#include "core/posg_scheduler.hpp"
#include "core/round_robin.hpp"
#include "engine/queue.hpp"
#include "engine/spsc_ring.hpp"
#include "hash/two_universal.hpp"
#include "obs/trace_ring.hpp"
#include "sketch/dual_sketch.hpp"

namespace {

using namespace posg;

void BM_HashEvaluation(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  const auto h = hash::TwoUniversalHash::sample(rng, 544);
  common::Item x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_HashEvaluation);

/// One-pass digest of a tuple under a 4-row hash set — the per-tuple hash
/// budget after the digest refactor (everything downstream is cell
/// arithmetic).
void BM_BucketDigest(benchmark::State& state) {
  const hash::HashSet hashes(7, 4, 544);
  common::Item x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hashes.digest(x++ % 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BucketDigest);

void BM_DualSketchUpdate(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  sketch::DualSketch sketch(sketch::SketchDims{rows, 544}, 7);
  common::Item x = 0;
  for (auto _ : state) {
    sketch.update(x++ % 4096, 1.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualSketchUpdate)->Arg(2)->Arg(4)->Arg(8);

void BM_DualSketchEstimate(benchmark::State& state) {
  sketch::DualSketch sketch(sketch::SketchDims{4, 544}, 7);
  common::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10'000; ++i) {
    sketch.update(rng.next_below(4096), 1.0 + static_cast<double>(rng.next_below(64)));
  }
  common::Item x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.estimate(x++ % 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualSketchEstimate);

void BM_RoundRobinSchedule(benchmark::State& state) {
  core::RoundRobinScheduler scheduler(5);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(seq % 4096, seq));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundRobinSchedule);

/// Thm 3.1: scheduler submit is O(k + log 1/delta). Measured in RUN state
/// with warmed sketches.
void BM_PosgSchedule(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;  // ship every second window
  core::PosgScheduler scheduler(k, config);
  for (common::InstanceId op = 0; op < k; ++op) {
    core::InstanceTracker tracker(op, config);
    for (int i = 0; i < 10'000; ++i) {
      if (auto shipment = tracker.on_executed(i % 4096, 1.0 + i % 64)) {
        scheduler.on_sketches(std::move(*shipment));
        break;
      }
    }
  }
  // Complete the first sync epoch so the greedy path is exercised.
  core::InstanceTracker proxy(0, config);
  proxy.on_executed(0, 1.0);
  common::SeqNo seq = 0;
  while (scheduler.state() != core::PosgScheduler::State::kRun && seq < 10 * k) {
    const auto decision = scheduler.schedule(seq % 4096, seq);
    if (decision.sync_request) {
      scheduler.on_sync_reply(core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
    }
    ++seq;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(seq % 4096, seq));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PosgSchedule)->Arg(2)->Arg(5)->Arg(10)->Arg(50);

/// End-to-end router throughput: the full decision loop an upstream
/// executor runs per tuple — greedy schedule (digest + cached argmin) with
/// the periodic shipment/marker/reply protocol folded in at its natural
/// rate, so epoch restarts and SEND_ALL billing stay on the measured path.
void BM_RouterThroughput(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;  // ship every second window
  core::PosgScheduler scheduler(k, config);
  std::vector<core::InstanceTracker> trackers;
  trackers.reserve(k);
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    const common::Item item = seq % 4096;
    const auto decision = scheduler.schedule(item, seq);
    benchmark::DoNotOptimize(decision.instance);
    // The picked instance executes the tuple; its tracker occasionally
    // ships a stable sketch back (the feedback loop of Fig. 1).
    auto& tracker = trackers[decision.instance];
    if (auto shipment =
            tracker.on_executed(item, 1.0 + static_cast<double>(rng.next_below(64)))) {
      scheduler.on_sketches(std::move(*shipment));
    }
    if (decision.sync_request) {
      scheduler.on_sync_reply(
          core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
    }
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterThroughput)->Arg(5)->Arg(10)->Arg(50);

/// Router throughput with the degradation layer hot: same loop as
/// BM_RouterThroughput at k=10, but one instance carries a 4x de-rate (a
/// detected straggler kept in rotation). The de-rate is re-asserted after
/// every sync reply because epoch completion re-derives it from the health
/// monitor — this stands in for a detector that keeps flagging the
/// straggler. Measures what the per-pick de-rate multiply and the skewed
/// greedy index cost on the steady-state path — the healthy-path number
/// must not move (derate defaults to 1.0 and multiplies through
/// bit-identically).
void BM_RouterThroughputDegraded(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;
  core::PosgScheduler scheduler(k, config);
  scheduler.set_derate(k - 1, 4.0);
  std::vector<core::InstanceTracker> trackers;
  trackers.reserve(k);
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    const common::Item item = seq % 4096;
    const auto decision = scheduler.schedule(item, seq);
    benchmark::DoNotOptimize(decision.instance);
    auto& tracker = trackers[decision.instance];
    if (auto shipment =
            tracker.on_executed(item, 1.0 + static_cast<double>(rng.next_below(64)))) {
      scheduler.on_sketches(std::move(*shipment));
    }
    if (decision.sync_request) {
      scheduler.on_sync_reply(
          core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
      scheduler.set_derate(k - 1, 4.0);
    }
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterThroughputDegraded)->Arg(10);

/// Router throughput with event tracing armed: same loop as
/// BM_RouterThroughput at k=10, but a TraceRing is bound and enabled, so
/// every decision stages a kScheduleDecision event and the ring mutex is
/// taken once per Writer batch. The gap to BM_RouterThroughput/10 is the
/// *enabled* tracing cost; the compiled-in-but-disabled cost (one relaxed
/// load + branch) is what tools/run_obs_overhead_gate.sh bounds, by
/// comparing BM_RouterThroughput/10 itself against the pre-obs baseline.
void BM_RouterThroughputTraced(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;
  core::PosgScheduler scheduler(k, config);
  obs::TraceRing ring(std::size_t{1} << 14U);
  ring.set_enabled(true);
  scheduler.bind_trace(&ring);
  std::vector<core::InstanceTracker> trackers;
  trackers.reserve(k);
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    const common::Item item = seq % 4096;
    const auto decision = scheduler.schedule(item, seq);
    benchmark::DoNotOptimize(decision.instance);
    auto& tracker = trackers[decision.instance];
    if (auto shipment =
            tracker.on_executed(item, 1.0 + static_cast<double>(rng.next_below(64)))) {
      scheduler.on_sketches(std::move(*shipment));
    }
    if (decision.sync_request) {
      scheduler.on_sync_reply(
          core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
    }
    ++seq;
  }
  scheduler.bind_trace(nullptr);  // flush before the ring dies
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterThroughputTraced)->Arg(10);

/// Router throughput with the elastic controller compiled in but idle:
/// same loop as BM_RouterThroughput at k=10, plus a *disabled*
/// ElasticController fed a load sample at the window cadence — the shape
/// an executor that links autoscaling but has not enabled it carries. A
/// disabled controller's on_sample is a single branch and the sample
/// assembly is 1/64th-rate, so this must track BM_RouterThroughput/10
/// inside the same ≤5% budget the obs gate enforces
/// (tools/run_obs_overhead_gate.sh).
void BM_RouterThroughputElasticIdle(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;
  core::PosgScheduler scheduler(k, config);
  core::ElasticConfig elastic_config;  // enabled defaults to false: idle
  core::ElasticController controller(elastic_config);
  std::vector<core::InstanceTracker> trackers;
  trackers.reserve(k);
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    const common::Item item = seq % 4096;
    const auto decision = scheduler.schedule(item, seq);
    benchmark::DoNotOptimize(decision.instance);
    auto& tracker = trackers[decision.instance];
    if (auto shipment =
            tracker.on_executed(item, 1.0 + static_cast<double>(rng.next_below(64)))) {
      scheduler.on_sketches(std::move(*shipment));
    }
    if (decision.sync_request) {
      scheduler.on_sync_reply(
          core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
    }
    ++seq;
    if (seq % config.window == 0) {
      core::ElasticSample sample;
      const auto loads = scheduler.estimated_loads();
      double total = 0.0;
      double peak = 0.0;
      for (const double load : loads) {
        total += load;
        peak = std::max(peak, load);
      }
      sample.backlog_ms = total;
      sample.queue_skew = total > 0.0 ? peak * static_cast<double>(k) / total : 1.0;
      sample.serving = k;
      benchmark::DoNotOptimize(controller.on_sample(sample).kind);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RouterThroughputElasticIdle)->Arg(10);

/// Queue hand-off cost per tuple: 256-tuple bursts moved producer ->
/// consumer on one thread, per-tuple push/pop vs push_all/pop_all. The
/// delta is pure lock/notify amortization (no contention, so this is the
/// lower bound of the batching win).
void BM_QueueTransfer(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  const bool batched = state.range(0) != 0;
  engine::BoundedQueue<std::uint64_t> queue(kBurst);
  std::vector<std::uint64_t> batch;
  batch.reserve(kBurst);
  std::vector<std::uint64_t> out;
  out.reserve(kBurst);
  std::uint64_t x = 0;
  for (auto _ : state) {
    if (batched) {
      for (std::size_t i = 0; i < kBurst; ++i) {
        batch.push_back(x++);
      }
      queue.push_all(batch);
      benchmark::DoNotOptimize(queue.pop_all(out));
      out.clear();
    } else {
      for (std::size_t i = 0; i < kBurst; ++i) {
        queue.push(x++);
      }
      for (std::size_t i = 0; i < kBurst; ++i) {
        benchmark::DoNotOptimize(queue.pop());
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_QueueTransfer)->Arg(0)->Arg(1);

/// SPSC ring hand-off cost per tuple: the same 256-tuple burst shape as
/// BM_QueueTransfer/1 but over the lock-free SpscRing — the delta against
/// BM_QueueTransfer/1 is what replacing the mutex/condvar with the
/// release/acquire index pair buys on an uncontended single-producer edge.
void BM_SpscTransfer(benchmark::State& state) {
  constexpr std::size_t kBurst = 256;
  engine::SpscRing<std::uint64_t> ring(kBurst);
  engine::SpscBind produce(ring.producer_role());
  engine::SpscBind consume(ring.consumer_role());
  std::vector<std::uint64_t> batch;
  batch.reserve(kBurst);
  std::vector<std::uint64_t> out;
  out.reserve(kBurst);
  std::uint64_t x = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kBurst; ++i) {
      batch.push_back(x++);
    }
    ring.push_all(batch);
    benchmark::DoNotOptimize(ring.pop_all(out));
    out.clear();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(kBurst));
}
BENCHMARK(BM_SpscTransfer);

/// Micro-batched router throughput: BM_RouterThroughput's protocol loop,
/// but decisions come from schedule_batch over range(1)-tuple batches —
/// one argmin and one digest amortized across the batch (DESIGN.md §13).
/// The per-tuple gap to BM_RouterThroughput/10 is the batching win; the
/// protocol (shipments, markers, replies) still runs per tuple.
void BM_RouterThroughputBatched(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto batch = static_cast<std::size_t>(state.range(1));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;  // ship every second window
  core::PosgScheduler scheduler(k, config);
  std::vector<core::InstanceTracker> trackers;
  trackers.reserve(k);
  for (common::InstanceId op = 0; op < k; ++op) {
    trackers.emplace_back(op, config);
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  std::vector<common::Item> items(batch);
  std::vector<common::SeqNo> seqs(batch);
  std::vector<core::Decision> decisions(batch);
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      items[i] = seq % 4096;
      seqs[i] = seq;
      ++seq;
    }
    scheduler.schedule_batch(items.data(), seqs.data(), batch, decisions.data());
    for (std::size_t i = 0; i < batch; ++i) {
      const core::Decision& decision = decisions[i];
      benchmark::DoNotOptimize(decision.instance);
      auto& tracker = trackers[decision.instance];
      if (auto shipment =
              tracker.on_executed(items[i], 1.0 + static_cast<double>(rng.next_below(64)))) {
        scheduler.on_sketches(std::move(*shipment));
      }
      if (decision.sync_request) {
        scheduler.on_sync_reply(
            core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
      }
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_RouterThroughputBatched)->Args({10, 8});

/// Same per-tuple decision loop as BM_RouterThroughput/10, but routed
/// through the multi-source tier: range(0) = S sources round-robining one
/// interleaved stream over S PosgScheduler views of a shared pool,
/// range(1) = reconcile mode (0 = per_source_greedy, 1 = gossip_merge at
/// the default cadence). Trackers are per (instance, source) — each view
/// is billed exactly its own routed share (DESIGN.md §15). The S=1 row is
/// the pass-through tax over BM_RouterThroughput/10 (one mutex + one pool
/// cursor check per tuple); the S=4 gossip row adds the snapshot/install
/// passes amortized over gossip_every_decisions.
void BM_RouterThroughputMultiSource(benchmark::State& state) {
  const auto sources = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 10;
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;  // ship every second window
  core::MultiSourceConfig multi;
  multi.sources = sources;
  multi.reconcile = state.range(1) == 0 ? core::ReconcileMode::kPerSourceGreedy
                                        : core::ReconcileMode::kGossipMerge;
  core::MultiSourceScheduler scheduler(k, config, multi);
  std::vector<core::InstanceTracker> trackers;  // [op * sources + source]
  trackers.reserve(k * sources);
  for (common::InstanceId op = 0; op < k; ++op) {
    for (std::size_t s = 0; s < sources; ++s) {
      trackers.emplace_back(op, config);
    }
  }
  common::Xoshiro256StarStar rng(11);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    const auto source = static_cast<common::SourceId>(seq % sources);
    const common::Item item = seq % 4096;
    const auto decision = scheduler.schedule(source, item, seq);
    benchmark::DoNotOptimize(decision.instance);
    auto& tracker = trackers[decision.instance * sources + source];
    if (auto shipment =
            tracker.on_executed(item, 1.0 + static_cast<double>(rng.next_below(64)))) {
      shipment->source = source;
      scheduler.on_feedback(source, core::FeedbackEvent{std::move(*shipment)});
    }
    if (decision.sync_request) {
      core::SyncReply reply{decision.instance, decision.sync_request->epoch, 0.0};
      reply.source = source;
      scheduler.on_feedback(source, core::FeedbackEvent{std::move(reply)});
    }
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
  // Makespan lens (computed outside the timed loop): pool-wide Ĉ per
  // instance is Σ over views, makespan its max, ideal its mean — so
  // `imbalance` = 1.0 is a perfectly balanced pool and the gap between
  // the /4/0 and /4/1 rows is what gossip reconciliation buys at S = 4.
  std::vector<double> pool_load(k, 0.0);
  for (std::size_t s = 0; s < sources; ++s) {
    const auto loads = scheduler.view(static_cast<common::SourceId>(s)).estimated_loads();
    for (std::size_t op = 0; op < k; ++op) {
      pool_load[op] += loads[op];
    }
  }
  const double makespan = *std::max_element(pool_load.begin(), pool_load.end());
  const double total = std::accumulate(pool_load.begin(), pool_load.end(), 0.0);
  if (total > 0.0) {
    state.counters["imbalance"] = makespan / (total / static_cast<double>(k));
  }
}
BENCHMARK(BM_RouterThroughputMultiSource)->Args({1, 0})->Args({4, 0})->Args({4, 1});

void BM_TrackerOnExecuted(benchmark::State& state) {
  core::PosgConfig config;  // calibrated defaults
  core::InstanceTracker tracker(0, config);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tracker.on_executed(seq % 4096, 1.0 + static_cast<double>(seq % 64)));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerOnExecuted);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): stamps the authoritative
// build-type context key. google-benchmark's own `library_build_type`
// reports how the *library* package was compiled (Debian ships a "debug"
// self-report even alongside -O3 binaries); `posg_build_type` reports how
// THIS binary was compiled, and tools/run_hotpath_bench.sh gates baseline
// regeneration on it.
int main(int argc, char** argv) {
#if defined(NDEBUG)
  benchmark::AddCustomContext("posg_build_type", "release");
#else
  benchmark::AddCustomContext("posg_build_type", "debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
