// Micro-benchmarks (google-benchmark) for the per-tuple fast paths whose
// asymptotic costs Theorems 3.1/3.2 state: hash evaluation, sketch update
// and query, scheduler submit, tracker update.
#include <benchmark/benchmark.h>

#include "common/prng.hpp"
#include "core/instance_tracker.hpp"
#include "core/posg_scheduler.hpp"
#include "core/round_robin.hpp"
#include "hash/two_universal.hpp"
#include "sketch/dual_sketch.hpp"

namespace {

using namespace posg;

void BM_HashEvaluation(benchmark::State& state) {
  common::Xoshiro256StarStar rng(1);
  const auto h = hash::TwoUniversalHash::sample(rng, 544);
  common::Item x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h(x++));
  }
}
BENCHMARK(BM_HashEvaluation);

void BM_DualSketchUpdate(benchmark::State& state) {
  const auto rows = static_cast<std::size_t>(state.range(0));
  sketch::DualSketch sketch(sketch::SketchDims{rows, 544}, 7);
  common::Item x = 0;
  for (auto _ : state) {
    sketch.update(x++ % 4096, 1.5);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualSketchUpdate)->Arg(2)->Arg(4)->Arg(8);

void BM_DualSketchEstimate(benchmark::State& state) {
  sketch::DualSketch sketch(sketch::SketchDims{4, 544}, 7);
  common::Xoshiro256StarStar rng(3);
  for (int i = 0; i < 10'000; ++i) {
    sketch.update(rng.next_below(4096), 1.0 + static_cast<double>(rng.next_below(64)));
  }
  common::Item x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.estimate(x++ % 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DualSketchEstimate);

void BM_RoundRobinSchedule(benchmark::State& state) {
  core::RoundRobinScheduler scheduler(5);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(seq % 4096, seq));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundRobinSchedule);

/// Thm 3.1: scheduler submit is O(k + log 1/delta). Measured in RUN state
/// with warmed sketches.
void BM_PosgSchedule(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  core::PosgConfig config;
  config.window = 64;
  config.mu = 10.0;  // ship every second window
  core::PosgScheduler scheduler(k, config);
  for (common::InstanceId op = 0; op < k; ++op) {
    core::InstanceTracker tracker(op, config);
    for (int i = 0; i < 10'000; ++i) {
      if (auto shipment = tracker.on_executed(i % 4096, 1.0 + i % 64)) {
        scheduler.on_sketches(*shipment);
        break;
      }
    }
  }
  // Complete the first sync epoch so the greedy path is exercised.
  core::InstanceTracker proxy(0, config);
  proxy.on_executed(0, 1.0);
  common::SeqNo seq = 0;
  while (scheduler.state() != core::PosgScheduler::State::kRun && seq < 10 * k) {
    const auto decision = scheduler.schedule(seq % 4096, seq);
    if (decision.sync_request) {
      scheduler.on_sync_reply(core::SyncReply{decision.instance, decision.sync_request->epoch, 0.0});
    }
    ++seq;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule(seq % 4096, seq));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PosgSchedule)->Arg(2)->Arg(5)->Arg(10)->Arg(50);

void BM_TrackerOnExecuted(benchmark::State& state) {
  core::PosgConfig config;  // calibrated defaults
  core::InstanceTracker tracker(0, config);
  common::SeqNo seq = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.on_executed(seq % 4096, 1.0 + seq % 64));
    ++seq;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackerOnExecuted);

}  // namespace

BENCHMARK_MAIN();
