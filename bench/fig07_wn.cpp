// Figure 7: average completion time vs the number of distinct
// execution-time values wn.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 7 — completion time vs number of execution-time values wn",
      "mean and variance of L shrink as wn grows, flattening for wn >= 16; POSG's ~19% gain "
      "mostly unaffected by wn");

  common::CsvWriter csv(bench::output_dir(args) + "/fig07_wn.csv",
                        {"wn", "policy", "L_mean_ms", "L_min_ms", "L_max_ms"});

  std::vector<bench::Summary> rr_all;
  std::vector<bench::Summary> posg_all;
  std::vector<double> speedups;
  std::printf("%6s | %26s | %26s | %7s\n", "wn", "Round-Robin L (min/mean/max)",
              "POSG L (min/mean/max)", "speedup");
  for (std::size_t wn : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    sim::ExperimentConfig config;
    config.m = m;
    config.wn = wn;
    const auto rr = bench::seeded_average_completion(config, sim::Policy::kRoundRobin, seeds);
    const auto posg = bench::seeded_average_completion(config, sim::Policy::kPosg, seeds);
    rr_all.push_back(rr);
    posg_all.push_back(posg);
    speedups.push_back(rr.mean / posg.mean);
    std::printf("%6zu | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %7.3f\n", wn, rr.min, rr.mean,
                rr.max, posg.min, posg.mean, posg.max, rr.mean / posg.mean);
    csv.row_values(wn, "round-robin", rr.mean, rr.min, rr.max);
    csv.row_values(wn, "posg", posg.mean, posg.min, posg.max);
  }

  bench::ShapeChecks checks;
  // Mean L decreases as wn grows (each single execution-time value matters
  // less), then flattens: wn = 2 -> 16 drops noticeably, wn = 64 -> 1024
  // barely moves.
  checks.check("L drops from wn=2 to wn=16", rr_all[3].mean < 0.8 * rr_all[0].mean,
               "L@2=" + std::to_string(rr_all[0].mean) +
                   " L@16=" + std::to_string(rr_all[3].mean));
  checks.check("L flattens for wn >= 64",
               std::abs(rr_all.back().mean - rr_all[5].mean) < 0.05 * rr_all[5].mean,
               "L@64=" + std::to_string(rr_all[5].mean) +
                   " L@1024=" + std::to_string(rr_all.back().mean));
  // Absolute seed spread also shrinks with wn (the paper's error bars).
  const double spread_first = rr_all.front().max - rr_all.front().min;
  const double spread_last = rr_all.back().max - rr_all.back().min;
  checks.check("absolute seed spread shrinks with wn", spread_last < spread_first,
               "spread@2=" + std::to_string(spread_first) +
                   " spread@1024=" + std::to_string(spread_last));
  const auto gain = bench::summarize(speedups);
  checks.check("POSG gain persists across wn (paper ~1.19)", gain.mean >= 1.1,
               "mean speedup=" + std::to_string(gain.mean));
  return checks.exit_code();
}
