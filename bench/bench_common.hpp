#pragma once

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "metrics/stats.hpp"
#include "sim/experiment.hpp"

/// Shared plumbing for the figure-reproduction harnesses.
///
/// Every harness prints (a) the same rows/series the paper's figure
/// reports, (b) a CSV copy for re-plotting, and (c) `# shape-check:`
/// lines that assert the figure's qualitative claims — so running the
/// bench suite doubles as a regression harness for the reproduction.
namespace posg::bench {

/// Aggregate of one sweep point over seeds (the paper reports max, mean
/// and min over its 100 stream randomizations).
struct Summary {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(const std::vector<double>& samples);

/// Mean completion time of `policy` over `seeds` stream randomizations.
Summary seeded_average_completion(const sim::ExperimentConfig& base, sim::Policy policy,
                                  std::size_t seeds);

/// Per-seed speedup of POSG over round-robin (sum-of-completions ratio on
/// identical streams), summarized.
Summary seeded_speedup(const sim::ExperimentConfig& base, std::size_t seeds);

/// Collects `# shape-check:` assertions; exit_code() is non-zero when any
/// failed, so the bench binary fails loudly on a regression.
class ShapeChecks {
 public:
  void check(const std::string& name, bool ok, const std::string& detail);
  int exit_code() const;

 private:
  int failures_ = 0;
};

/// Standard header: figure id, paper claim, repo configuration.
void print_header(const std::string& figure, const std::string& claim);

/// Directory for CSV copies (created on demand): --out <dir>, default
/// "bench_results".
std::string output_dir(const common::CliArgs& args);

}  // namespace posg::bench
