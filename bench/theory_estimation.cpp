// Theorem 4.3 + the Sec. IV-B numerical application: expected value of the
// W/C ratio estimator under uniform frequencies, closed form vs
// Monte-Carlo, plus the Markov tail bound.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/prng.hpp"
#include "sketch/analysis.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 2000));

  bench::print_header(
      "Theorem 4.3 — E{W_v/C_v} under uniform frequencies",
      "paper numerical application: 55 buckets, n = 4096, execution times 1..64 (64 items "
      "each) gives E in [32.08, 32.92]; Pr{min over 10 rows >= 48} <= 0.024");

  // Paper setup.
  std::vector<common::TimeMs> weights;
  for (int value = 1; value <= 64; ++value) {
    for (int rep = 0; rep < 64; ++rep) {
      weights.push_back(static_cast<double>(value));
    }
  }
  const std::size_t buckets = 55;

  common::CsvWriter csv(bench::output_dir(args) + "/theory_estimation.csv",
                        {"w_v", "analytic_expectation", "monte_carlo_mean"});

  common::Xoshiro256StarStar rng(13);
  auto monte_carlo = [&](std::size_t v) {
    double sum = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const std::uint64_t hv = rng.next_below(buckets);
      double c = 1.0;
      double w = weights[v];
      for (std::size_t u = 0; u < weights.size(); ++u) {
        if (u != v && rng.next_below(buckets) == hv) {
          c += 1.0;
          w += weights[u];
        }
      }
      sum += w / c;
    }
    return sum / static_cast<double>(trials);
  };

  bench::ShapeChecks checks;
  double analytic_min = 1e18;
  double analytic_max = -1e18;
  std::printf("%6s | %10s | %12s\n", "w_v", "analytic", "monte-carlo");
  for (int value = 1; value <= 64; value += 9) {
    const std::size_t v = static_cast<std::size_t>(value - 1) * 64;  // one item per value
    const double analytic = sketch::expected_ratio_uniform_frequencies(weights, buckets, v);
    const double empirical = monte_carlo(v);
    analytic_min = std::min(analytic_min, analytic);
    analytic_max = std::max(analytic_max, analytic);
    std::printf("%6d | %10.4f | %12.4f\n", value, analytic, empirical);
    csv.row_values(value, analytic, empirical);
    checks.check("MC matches closed form (w_v=" + std::to_string(value) + ")",
                 std::abs(empirical - analytic) < 0.35,
                 "analytic=" + std::to_string(analytic) +
                     " empirical=" + std::to_string(empirical));
  }
  // Full range over every distinct value.
  for (int value = 1; value <= 64; ++value) {
    const double analytic = sketch::expected_ratio_uniform_frequencies(
        weights, buckets, static_cast<std::size_t>(value - 1) * 64);
    analytic_min = std::min(analytic_min, analytic);
    analytic_max = std::max(analytic_max, analytic);
  }
  std::printf("analytic range over all 64 values: [%.2f, %.2f] (paper: [32.08, 32.92])\n",
              analytic_min, analytic_max);
  checks.check("range lower end", std::abs(analytic_min - 32.08) < 0.01,
               "min=" + std::to_string(analytic_min));
  checks.check("range upper end", std::abs(analytic_max - 32.92) < 0.01,
               "max=" + std::to_string(analytic_max));

  const double tail_bound = sketch::markov_min_rows_bound(33.0, 48.0, 10);
  std::printf("Markov bound Pr{min over 10 rows >= 48} <= %.4f (paper: <= 0.024)\n", tail_bound);
  checks.check("Markov bound matches paper", tail_bound <= 0.024,
               "bound=" + std::to_string(tail_bound));
  return checks.exit_code();
}
