// Figure 10: simulator per-tuple completion-time time series with an
// abrupt change in the instances' load characteristics at tuple 75 000.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

namespace {

double window_mean(const std::vector<metrics::CompletionSeries::WindowPoint>& points,
                   common::SeqNo from, common::SeqNo to) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& point : points) {
    if (point.window_start >= from && point.window_start < to) {
      sum += point.mean;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto m = static_cast<std::size_t>(args.get_int("m", 150'000));
  const auto window = static_cast<std::size_t>(args.get_int("window", 2000));
  const common::SeqNo change_at = m / 2;

  bench::print_header(
      "Figure 10 — simulator completion-time time series (load drift at m/2)",
      "POSG tracks RR during warm-up, then drops below it; degrades right after the phase "
      "change; recovers once updated matrices reach the scheduler");

  sim::ExperimentConfig config;
  config.m = m;
  config.stream_seed = 4242;
  config.assignment_seed = 2424;
  config.phases = {{0, {1.05, 1.025, 1.0, 0.975, 0.95}},
                   {change_at, {0.90, 0.95, 1.0, 1.05, 1.10}}};

  sim::Experiment experiment(config);
  const auto rr = experiment.run(sim::Policy::kRoundRobin);
  const auto posg = experiment.run(sim::Policy::kPosg);

  const auto rr_points = rr.raw.completions.windowed(window);
  const auto posg_points = posg.raw.completions.windowed(window);

  common::CsvWriter csv(bench::output_dir(args) + "/fig10_timeseries_sim.csv",
                        {"window_start", "policy", "min_ms", "mean_ms", "max_ms"});
  std::printf("%10s | %28s | %28s\n", "tuple", "POSG (min/mean/max)", "Round-Robin (min/mean/max)");
  for (std::size_t i = 0; i < posg_points.size(); ++i) {
    const auto& p = posg_points[i];
    const auto& r = rr_points[i];
    // Print every 4th window to keep the table readable; the CSV has all.
    if (i % 4 == 0) {
      std::printf("%10llu | %8.1f %9.1f %9.1f | %8.1f %9.1f %9.1f\n",
                  static_cast<unsigned long long>(p.window_start), p.min, p.mean, p.max, r.min,
                  r.mean, r.max);
    }
    csv.row_values(p.window_start, "posg", p.min, p.mean, p.max);
    csv.row_values(r.window_start, "round-robin", r.min, r.mean, r.max);
  }

  // Phase landmarks for the shape checks.
  const double posg_steady1 = window_mean(posg_points, change_at / 2, change_at);
  const double rr_steady1 = window_mean(rr_points, change_at / 2, change_at);
  const double posg_after = window_mean(posg_points, change_at, change_at + 6 * window);
  const double posg_recovered = window_mean(posg_points, m - change_at / 2, m);
  const double rr_recovered = window_mean(rr_points, m - change_at / 2, m);

  std::printf("\nlandmarks: steady1 posg=%.1f rr=%.1f | just-after-change posg=%.1f | "
              "recovered posg=%.1f rr=%.1f\n",
              posg_steady1, rr_steady1, posg_after, posg_recovered, rr_recovered);

  bench::ShapeChecks checks;
  checks.check("POSG below RR in steady phase 1", posg_steady1 < rr_steady1,
               "posg=" + std::to_string(posg_steady1) + " rr=" + std::to_string(rr_steady1));
  checks.check("POSG recovers after the change", posg_recovered < rr_recovered,
               "posg=" + std::to_string(posg_recovered) +
                   " rr=" + std::to_string(rr_recovered));
  return checks.exit_code();
}
