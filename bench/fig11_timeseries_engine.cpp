// Figure 11: the Fig. 10 scenario on the engine prototype — POSG vs the
// stock shuffle grouping (the paper's "ASSG"), real threads and clocks.
//
// Scaling note (DESIGN.md §2): the paper runs milliseconds-scale costs on
// an Azure cluster for minutes; this harness scales execution times down
// so the whole series fits in tens of seconds of wall time, and uses a
// blocking (sleep) operator so k instances overlap even on a single-core
// host.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "engine/builtin.hpp"
#include "engine/engine.hpp"
#include "engine/posg_grouping.hpp"
#include "workload/distributions.hpp"
#include "workload/exec_time.hpp"
#include "workload/stream.hpp"

using namespace posg;

namespace {

struct RunOutput {
  metrics::CompletionSeries series;
};

RunOutput run_engine(bool use_posg, const std::vector<common::Item>& items,
                     const workload::ExecutionTimeModel& model, double scale, std::size_t k,
                     std::chrono::microseconds inter_arrival) {
  engine::TopologyBuilder builder;
  builder.add_spout("source", [&items, inter_arrival](const engine::ComponentContext&) {
    return std::make_unique<engine::SyntheticSpout>(items, inter_arrival);
  });
  std::shared_ptr<engine::Grouping> grouping;
  if (use_posg) {
    core::PosgConfig config;  // calibrated defaults
    grouping = std::make_shared<engine::PosgGrouping>(k, config);
  } else {
    grouping = std::make_shared<engine::ShuffleGrouping>();
  }
  auto cost = [&model, scale](common::Item item, common::InstanceId op, common::SeqNo seq) {
    return model.execution_time(item, op, seq) * scale;
  };
  builder.add_bolt("worker",
                   [cost](const engine::ComponentContext&) {
                     return std::make_unique<engine::SleepBolt>(cost);
                   },
                   k, {{"source", grouping}});
  engine::Engine engine(builder.build());
  engine.run();
  return RunOutput{engine.completions().series()};
}

double window_mean(const std::vector<metrics::CompletionSeries::WindowPoint>& points,
                   common::SeqNo from, common::SeqNo to) {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& point : points) {
    if (point.window_start >= from && point.window_start < to) {
      sum += point.mean;
      ++count;
    }
  }
  return count > 0 ? sum / static_cast<double>(count) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto m = static_cast<std::size_t>(args.get_int("m", 30'000));
  const double scale = args.get_double("scale", 1.0 / 40.0);  // 64 ms -> 1.6 ms
  // Provisioning headroom: the sleep-based operator overshoots each
  // execution by the OS timer slack (~4-7% at this scale), so the source
  // is provisioned a little above the analytic 100% — otherwise *every*
  // instance is over capacity and the growing aggregate backlog swamps the
  // scheduling-policy difference the figure is about.
  const double provisioning = args.get_double("prov", 1.15);
  const auto window = static_cast<std::size_t>(args.get_int("window", 1000));
  const std::size_t k = 5;
  const common::SeqNo change_at = m / 2;

  bench::print_header(
      "Figure 11 — engine prototype completion-time time series (load drift at m/2)",
      "same qualitative behaviour as the simulator: POSG drops below stock shuffle after "
      "warm-up, degrades at the change, recovers after the next sketch shipment");

  const workload::ZipfItems distribution(4096, 1.0);
  const auto items = workload::StreamGenerator::generate(distribution, m, 4242);
  workload::ExecutionTimeAssignment assignment(4096, 64, 1.0, 64.0,
                                               workload::ValueSpacing::kLinear, 2424);
  // The simulator bench (fig10) keeps the paper's exact multipliers. On
  // the engine, single-core timing noise between whole runs is tens of
  // percent, so the drift amplitude is doubled to keep the figure's
  // signal well above that noise floor (same shape, stronger contrast).
  workload::InstanceLoadModel load_model(
      k, {{0, {1.10, 1.05, 1.0, 0.95, 0.90}}, {change_at, {0.80, 0.90, 1.0, 1.10, 1.20}}});
  const workload::ExecutionTimeModel model(assignment, load_model);

  const double mean_ms = assignment.mean_under(distribution) * scale;
  const auto inter_arrival = std::chrono::microseconds(
      static_cast<std::int64_t>(mean_ms * 1000.0 * provisioning / static_cast<double>(k)));
  std::printf("scaled mean execution time %.3f ms, inter-arrival %lld us, m = %zu\n", mean_ms,
              static_cast<long long>(inter_arrival.count()), m);

  const auto shuffle = run_engine(false, items, model, scale, k, inter_arrival);
  const auto posg = run_engine(true, items, model, scale, k, inter_arrival);

  const auto shuffle_points = shuffle.series.windowed(window);
  const auto posg_points = posg.series.windowed(window);

  common::CsvWriter csv(bench::output_dir(args) + "/fig11_timeseries_engine.csv",
                        {"window_start", "policy", "min_ms", "mean_ms", "max_ms"});
  std::printf("%10s | %28s | %28s\n", "tuple", "POSG (min/mean/max)", "ASSG (min/mean/max)");
  for (std::size_t i = 0; i < posg_points.size() && i < shuffle_points.size(); ++i) {
    const auto& p = posg_points[i];
    const auto& s = shuffle_points[i];
    if (i % 3 == 0) {
      std::printf("%10llu | %8.2f %9.2f %9.2f | %8.2f %9.2f %9.2f\n",
                  static_cast<unsigned long long>(p.window_start), p.min, p.mean, p.max, s.min,
                  s.mean, s.max);
    }
    csv.row_values(p.window_start, "posg", p.min, p.mean, p.max);
    csv.row_values(s.window_start, "assg", s.min, s.mean, s.max);
  }

  const double posg_steady1 = window_mean(posg_points, change_at / 2, change_at);
  const double assg_steady1 = window_mean(shuffle_points, change_at / 2, change_at);
  const double posg_recovered = window_mean(posg_points, m - change_at / 2, m);
  const double assg_recovered = window_mean(shuffle_points, m - change_at / 2, m);
  std::printf("\nlandmarks: steady1 posg=%.2f assg=%.2f | recovered posg=%.2f assg=%.2f\n",
              posg_steady1, assg_steady1, posg_recovered, assg_recovered);

  bench::ShapeChecks checks;
  // Phase 1 (multipliers 0.95..1.05) is sustainable for both policies at
  // this provisioning; POSG should be at worst near parity (engine timing
  // noise is a few tens of percent at these millisecond scales).
  checks.check("POSG near/below ASSG in steady phase 1", posg_steady1 <= assg_steady1 * 1.3,
               "posg=" + std::to_string(posg_steady1) + " assg=" + std::to_string(assg_steady1));
  // Phase 2 (multipliers 0.90..1.10) overloads the slowest instance under
  // count-balanced shuffle; POSG must shift work away and end the run
  // clearly below ASSG — the figure's adaptation claim.
  checks.check("POSG recovers after the change", posg_recovered < assg_recovered,
               "posg=" + std::to_string(posg_recovered) +
                   " assg=" + std::to_string(assg_recovered));
  return checks.exit_code();
}
