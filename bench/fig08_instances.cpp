// Figure 8: completion-time speedup vs the number of parallel operator
// instances k.
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 8 — speedup vs number of operator instances k",
      "speedup = 1 at k = 1 (POSG adds no delay), grows with k and saturates by k ~ 10");

  common::CsvWriter csv(bench::output_dir(args) + "/fig08_instances.csv",
                        {"k", "speedup_mean", "speedup_min", "speedup_max"});

  std::vector<bench::Summary> summaries;
  std::printf("%4s | %8s %8s %8s\n", "k", "min", "mean", "max");
  for (std::size_t k = 1; k <= 10; ++k) {
    sim::ExperimentConfig config;
    config.m = m;
    config.k = k;
    // Per the paper, the input rate is re-provisioned to 100% for each k.
    const auto summary = bench::seeded_speedup(config, seeds);
    summaries.push_back(summary);
    std::printf("%4zu | %8.3f %8.3f %8.3f\n", k, summary.min, summary.mean, summary.max);
    csv.row_values(k, summary.mean, summary.min, summary.max);
  }

  bench::ShapeChecks checks;
  checks.check("k = 1 is parity", std::abs(summaries[0].mean - 1.0) < 0.02,
               "mean@k1=" + std::to_string(summaries[0].mean));
  checks.check("k >= 2 gains", summaries[2].mean > 1.05,
               "mean@k3=" + std::to_string(summaries[2].mean));
  // Saturation: the k=9..10 delta is small relative to the k=2..3 delta.
  const double early_delta = summaries[2].mean - summaries[1].mean;
  const double late_delta = std::abs(summaries[9].mean - summaries[8].mean);
  checks.check("growth saturates", late_delta <= std::max(0.08, 2.0 * std::abs(early_delta)),
               "early=" + std::to_string(early_delta) + " late=" + std::to_string(late_delta));
  return checks.exit_code();
}
