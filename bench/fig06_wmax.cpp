// Figure 6: average completion time vs the maximum execution-time value
// w_max (POSG vs Round-Robin, min/mean/max over seeds).
#include <cstdio>

#include "bench_common.hpp"
#include "common/csv.hpp"

using namespace posg;

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto seeds = static_cast<std::size_t>(args.get_int("seeds", 8));
  const auto m = static_cast<std::size_t>(args.get_int("m", 32'768));

  bench::print_header(
      "Figure 6 — completion time vs maximum execution time w_max",
      "L grows with w_max; POSG's relative gain over RR stays roughly constant "
      "(paper: average speedup ~1.19 across the sweep)");

  common::CsvWriter csv(bench::output_dir(args) + "/fig06_wmax.csv",
                        {"wmax_ms", "policy", "L_mean_ms", "L_min_ms", "L_max_ms"});

  std::vector<double> posg_means;
  std::vector<double> rr_means;
  std::vector<double> speedups;
  std::printf("%8s | %26s | %26s | %7s\n", "wmax", "Round-Robin L (min/mean/max)",
              "POSG L (min/mean/max)", "speedup");
  for (double wmax : {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0}) {
    sim::ExperimentConfig config;
    config.m = m;
    config.wmax = wmax;
    // wn must not exceed the number of representable integer steps; keep
    // the paper's wn = 64 once wmax >= 64, shrink below.
    config.wn = static_cast<std::size_t>(std::min(64.0, wmax));
    const auto rr = bench::seeded_average_completion(config, sim::Policy::kRoundRobin, seeds);
    const auto posg = bench::seeded_average_completion(config, sim::Policy::kPosg, seeds);
    rr_means.push_back(rr.mean);
    posg_means.push_back(posg.mean);
    speedups.push_back(rr.mean / posg.mean);
    std::printf("%8.0f | %8.1f %8.1f %8.1f | %8.1f %8.1f %8.1f | %7.3f\n", wmax, rr.min, rr.mean,
                rr.max, posg.min, posg.mean, posg.max, rr.mean / posg.mean);
    csv.row_values(wmax, "round-robin", rr.mean, rr.min, rr.max);
    csv.row_values(wmax, "posg", posg.mean, posg.min, posg.max);
  }

  bench::ShapeChecks checks;
  checks.check("L grows with wmax (RR)", rr_means.back() > rr_means.front() * 10,
               "first=" + std::to_string(rr_means.front()) +
                   " last=" + std::to_string(rr_means.back()));
  checks.check("L grows with wmax (POSG)", posg_means.back() > posg_means.front() * 10,
               "first=" + std::to_string(posg_means.front()) +
                   " last=" + std::to_string(posg_means.back()));
  const auto gain = bench::summarize(speedups);
  checks.check("POSG gain persists across the sweep", gain.mean >= 1.1,
               "mean speedup=" + std::to_string(gain.mean));
  checks.check("no point catastrophically worse", gain.min >= 0.9,
               "min speedup=" + std::to_string(gain.min));
  return checks.exit_code();
}
