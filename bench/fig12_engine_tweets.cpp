// Figure 12: prototype average completion time vs the number of operator
// instances k, on the (synthesized) tweet dataset — POSG vs stock shuffle
// grouping.
//
// Scaling note (DESIGN.md §2): class costs are the paper's 25/5/1 ratio
// scaled down (default 5/1/0.2 ms) and the stream is shortened so the
// whole sweep fits in about a minute of wall time. As in the paper's
// Fig. 8, the source rate is re-provisioned per k.
#include <algorithm>
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "engine/builtin.hpp"
#include "engine/engine.hpp"
#include "engine/posg_grouping.hpp"
#include "workload/tweets.hpp"

using namespace posg;

namespace {

double run_engine(bool use_posg, const workload::TweetDataset& dataset, std::size_t m,
                  std::size_t k, double scale, double provisioning) {
  const std::vector<common::Item> items(dataset.stream().begin(),
                                        dataset.stream().begin() + m);
  const double mean_ms = dataset.mean_execution_time() * scale;
  const auto inter_arrival = std::chrono::microseconds(static_cast<std::int64_t>(
      mean_ms * 1000.0 * provisioning / static_cast<double>(k)));

  engine::TopologyBuilder builder;
  builder.add_spout("tweets", [&items, inter_arrival](const engine::ComponentContext&) {
    return std::make_unique<engine::SyntheticSpout>(items, inter_arrival);
  });
  std::shared_ptr<engine::Grouping> grouping;
  if (use_posg) {
    core::PosgConfig config;
    grouping = std::make_shared<engine::PosgGrouping>(k, config);
  } else {
    grouping = std::make_shared<engine::ShuffleGrouping>();
  }
  auto cost = [&dataset, scale](common::Item entity, common::InstanceId, common::SeqNo) {
    return dataset.execution_time(entity) * scale;
  };
  builder.add_bolt("enrich",
                   [cost](const engine::ComponentContext&) {
                     return std::make_unique<engine::SleepBolt>(cost);
                   },
                   k, {{"tweets", grouping}});
  engine::Engine engine(builder.build());
  engine.run();
  return engine.completions().series().average();
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto m = static_cast<std::size_t>(args.get_int("m", 8000));
  // Class costs scaled to 5/1/0.2 ms: large enough that the OS timer
  // slack (~60 us per sleep) stays a small fraction of every class.
  const double scale = args.get_double("scale", 0.2);
  const double provisioning = args.get_double("prov", 1.08);
  const auto reps = static_cast<std::size_t>(args.get_int("reps", 3));

  bench::print_header(
      "Figure 12 — prototype completion time vs k on the tweet dataset",
      "POSG below stock shuffle grouping for k >= 2 (paper: mean speedup 1.37, still 16% at "
      "k = 10); both decrease with k");

  workload::TweetDatasetConfig dataset_config;
  dataset_config.stream_length = m;
  const workload::TweetDataset dataset(dataset_config);
  std::printf("dataset: %zu entities, zipf alpha %.3f, scaled mean cost %.3f ms\n",
              dataset_config.entities, dataset.calibrated_alpha(),
              dataset.mean_execution_time() * scale);

  common::CsvWriter csv(bench::output_dir(args) + "/fig12_engine_tweets.csv",
                        {"k", "L_assg_ms", "L_posg_ms", "speedup"});

  std::vector<double> speedups;
  std::vector<double> assg_means;
  std::vector<double> posg_means;
  const std::vector<std::size_t> ks{1, 2, 3, 4, 6, 10};
  std::printf("%4s | %10s %10s | %7s\n", "k", "ASSG L", "POSG L", "speedup");
  for (std::size_t k : ks) {
    // Near-capacity single-core runs are noisy between whole executions
    // (the paper itself flags anomalous points at k = 2 and k = 7). Pair
    // the two policies within each repetition and take the median ratio —
    // medians absorb the occasional drained or overloaded outlier run.
    std::vector<double> ratios;
    double assg_sum = 0.0;
    double posg_sum = 0.0;
    for (std::size_t r = 0; r < reps; ++r) {
      const double assg = run_engine(false, dataset, m, k, scale, provisioning);
      const double posg = run_engine(true, dataset, m, k, scale, provisioning);
      ratios.push_back(assg / posg);
      assg_sum += assg;
      posg_sum += posg;
    }
    std::sort(ratios.begin(), ratios.end());
    const double median_ratio = ratios[ratios.size() / 2];
    const double assg = assg_sum / static_cast<double>(reps);
    const double posg = posg_sum / static_cast<double>(reps);
    assg_means.push_back(assg);
    posg_means.push_back(posg);
    speedups.push_back(median_ratio);
    std::printf("%4zu | %10.2f %10.2f | %7.3f (median of %zu)\n", k, assg, posg, median_ratio,
                reps);
    csv.row_values(k, assg, posg, median_ratio);
  }

  bench::ShapeChecks checks;
  // At k = 1 both groupings route identically (single target), so any
  // difference is pure run-to-run noise — and k = 1 runs at the capacity
  // knife-edge, where completion times mix extremely slowly. Only a
  // sanity band is asserted.
  checks.check("k = 1 sanity band", speedups.front() > 0.3 && speedups.front() < 8.0,
               "speedup@k1=" + std::to_string(speedups.front()));
  // The figure's claims, phrased to survive single-core run noise: POSG
  // is never materially worse at any k, and wins at the pressured small-k
  // points where queues actually exist.
  double worst = 1e18;
  for (std::size_t i = 1; i < speedups.size(); ++i) {
    worst = std::min(worst, speedups[i]);
  }
  checks.check("POSG never materially worse (median ratio >= 0.85)", worst >= 0.85,
               "worst median ratio=" + std::to_string(worst));
  const double pressured_best =
      std::max({speedups[1], speedups[2], speedups[3]});  // k = 2, 3, 4
  checks.check("POSG wins at the pressured small-k points", pressured_best > 1.0,
               "best of k=2..4 median ratios=" + std::to_string(pressured_best));
  checks.check("L decreases with k (POSG)", posg_means.back() < posg_means.front(),
               "k1=" + std::to_string(posg_means.front()) +
                   " k10=" + std::to_string(posg_means.back()));
  return checks.exit_code();
}
