// Theorem 4.2: the Greedy Online Scheduler is a (2 - 1/k)-approximation of
// the optimal makespan. This harness measures the worst observed
// greedy-to-lower-bound ratio over random task sets and reproduces the
// paper's tightness construction.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "common/csv.hpp"
#include "common/prng.hpp"
#include "core/full_knowledge.hpp"

using namespace posg;

namespace {

double greedy_makespan(const std::vector<double>& costs, std::size_t k) {
  core::FullKnowledgeScheduler greedy(
      k, [&costs](common::Item item, common::InstanceId, common::SeqNo) { return costs[item]; });
  for (common::SeqNo i = 0; i < costs.size(); ++i) {
    greedy.schedule(i, i);
  }
  const auto& loads = greedy.cumulated_loads();
  return *std::max_element(loads.begin(), loads.end());
}

double opt_lower_bound(const std::vector<double>& costs, std::size_t k) {
  const double total = std::accumulate(costs.begin(), costs.end(), 0.0);
  const double wmax = *std::max_element(costs.begin(), costs.end());
  return std::max(total / static_cast<double>(k), wmax);
}

}  // namespace

int main(int argc, char** argv) {
  const common::CliArgs args(argc, argv);
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 2000));

  bench::print_header(
      "Theorem 4.2 — greedy online scheduling is a (2 - 1/k)-approximation",
      "worst-case ratio <= 2 - 1/k for every k; the paper's adversarial sequence attains it");

  common::CsvWriter csv(bench::output_dir(args) + "/theory_greedy_bound.csv",
                        {"k", "bound", "worst_random_ratio", "tightness_ratio"});

  bench::ShapeChecks checks;
  std::printf("%4s | %8s | %18s | %18s\n", "k", "2-1/k", "worst random ratio",
              "tightness example");
  for (std::size_t k : {2, 3, 4, 5, 8, 10, 16}) {
    const double bound = 2.0 - 1.0 / static_cast<double>(k);

    common::Xoshiro256StarStar rng(k * 7919);
    double worst = 0.0;
    for (std::size_t t = 0; t < trials; ++t) {
      const std::size_t m = 5 + rng.next_below(100);
      std::vector<double> costs(m);
      for (auto& c : costs) {
        c = 1.0 + static_cast<double>(rng.next_below(1000));
      }
      worst = std::max(worst, greedy_makespan(costs, k) / opt_lower_bound(costs, k));
    }

    // Paper's tightness sequence: k(k-1) tasks of wmax/k, then one of wmax.
    std::vector<double> adversarial(k * (k - 1), 1.0 / static_cast<double>(k));
    adversarial.push_back(1.0);
    const double tightness = greedy_makespan(adversarial, k) / 1.0;  // OPT = wmax = 1

    std::printf("%4zu | %8.4f | %18.4f | %18.4f\n", k, bound, worst, tightness);
    csv.row_values(k, bound, worst, tightness);

    checks.check("random ratio within bound (k=" + std::to_string(k) + ")",
                 worst <= bound + 1e-9, "worst=" + std::to_string(worst));
    checks.check("tightness attains bound (k=" + std::to_string(k) + ")",
                 std::abs(tightness - bound) < 1e-9, "ratio=" + std::to_string(tightness));
  }
  return checks.exit_code();
}
